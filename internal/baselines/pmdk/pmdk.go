// Package pmdk reimplements the PMDK (libpmemobj) programming model
// over the simulated device, faithfully reproducing the design choices
// the paper compares against (§2, Table 1):
//
//   - Fat pointers: a PMEMoid-style {pool id, offset} pair. Every
//     dereference costs a pool-registry lookup plus an add, and stored
//     references are 16 bytes instead of 8 (Fig. 1's overhead).
//   - Per-pool hybrid logging: undo log for user data (TX_ADD), redo
//     log for allocator metadata (PMDK PR #2716), both inside the pool.
//   - Application-dependent recovery: logs replay only when the same
//     pool is next opened by an application with write access —
//     exactly the brittleness §2.1 criticizes.
//   - Clone-blocking: each pool embeds a UUID; opening two pools with
//     the same UUID is refused, so copies cannot be opened together and
//     cross-pool pointers are unsupported (§2.3).
package pmdk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"sync"

	"puddles/internal/pmem"
	"puddles/internal/pmlib"
	"puddles/internal/uid"
)

const (
	poolMagic = 0x4b444d50 // "PMDK"

	// Pool layout: header page, undo log, redo log, then heap.
	hdrSize  = pmem.PageSize
	undoSize = 512 << 10
	redoSize = 512 << 10

	hOffMagic    = 0
	hOffUUID     = 8
	hOffSize     = 24
	hOffRootOff  = 32
	hOffRootSize = 40
	hOffHeapOff  = 48
	hOffNextFree = 56 // bump cursor for the heap (redo-logged)
	hOffUndoOff  = 64
	hOffRedoOff  = 72
	hOffFreeHead = 80 // free-list head offset (redo-logged)

	// Undo log: epoch u64, valid u64, used u64, entries...
	uOffEpoch = 0
	uOffValid = 8
	uOffUsed  = 16
	uHdr      = 32
	// Undo entry: ck u64, off u64, size u64, data.
	ueHdr = 24

	// Redo log: valid u64, count u64, entries (ck, off, val)...
	rOffValid = 0
	rOffCount = 8
	rHdr      = 32
	reSize    = 24

	objHdr = 16 // size u64, next-free u64 (free-list link)
)

var crcTable = crc64.MakeTable(crc64.ISO)

// Errors.
var (
	ErrUUIDOpen   = errors.New("pmdk: a pool with this UUID is already open (copies cannot be opened together)")
	ErrNoSpace    = errors.New("pmdk: pool out of space")
	ErrBadPool    = errors.New("pmdk: not a pmdk pool")
	ErrCrossPool  = errors.New("pmdk: cross-pool operation not supported")
	ErrTxConflict = errors.New("pmdk: nested or concurrent transaction on pool")
)

// Runtime is a "process" running libpmemobj: it tracks the open pools
// so fat pointers can be translated. Pools are keyed by the 64-bit
// identity embedded in the pool header (derived from its UUID, as in
// PMDK's pmemobj): OIDs carry that identity, so they resolve across
// close/reopen — and two pools with the same UUID can never be open
// together.
type Runtime struct {
	dev *pmem.Device

	mu       sync.RWMutex
	pools    map[uint64]*Pool // by uuid-derived pool id
	nextBase pmem.Addr
}

// NewRuntime creates a runtime over a private device.
func NewRuntime() *Runtime {
	return NewRuntimeOn(pmem.New())
}

// NewRuntimeOn creates a runtime over an existing device.
func NewRuntimeOn(dev *pmem.Device) *Runtime {
	return &Runtime{
		dev:      dev,
		pools:    make(map[uint64]*Pool),
		nextBase: pmem.PageSize,
	}
}

// Device returns the runtime's device.
func (rt *Runtime) Device() *pmem.Device { return rt.dev }

// Pool is one libpmemobj pool.
type Pool struct {
	rt   *Runtime
	id   uint64
	base pmem.Addr
	size uint64
	uuid uid.UUID

	mu       sync.Mutex
	freeHead uint64 // volatile head of the free list (offset; 0 = empty)
	inTx     bool
}

// Create formats a new pool of the given size.
func (rt *Runtime) Create(size uint64) (*Pool, error) {
	if size < hdrSize+undoSize+redoSize+pmem.PageSize {
		return nil, fmt.Errorf("pmdk: pool size %d too small", size)
	}
	rt.mu.Lock()
	base := rt.nextBase
	rt.nextBase += pmem.Addr((size + pmem.PageSize - 1) &^ (pmem.PageSize - 1))
	rt.mu.Unlock()
	id := uid.New()
	dev := rt.dev
	dev.Zero(base, int(hdrSize+undoSize+redoSize))
	dev.Store(base+hOffUUID, id[:])
	dev.StoreU64(base+hOffSize, size)
	dev.StoreU64(base+hOffUndoOff, hdrSize)
	dev.StoreU64(base+hOffRedoOff, hdrSize+undoSize)
	dev.StoreU64(base+hOffHeapOff, hdrSize+undoSize+redoSize)
	dev.StoreU64(base+hOffNextFree, hdrSize+undoSize+redoSize)
	dev.StoreU64(base+uOffEpoch+hdrSize, 1)
	dev.Persist(base, int(hdrSize+undoSize+redoSize))
	dev.StoreU64(base+hOffMagic, poolMagic)
	dev.Persist(base+hOffMagic, 8)
	return rt.register(base)
}

// Open maps an existing pool at base and runs PMDK-style recovery:
// any incomplete transaction in the pool's logs is resolved HERE, on
// application open — not before (paper §2.1).
func (rt *Runtime) Open(base pmem.Addr) (*Pool, error) {
	if rt.dev.LoadU64(base+hOffMagic) != poolMagic {
		return nil, ErrBadPool
	}
	p, err := rt.register(base)
	if err != nil {
		return nil, err
	}
	p.recover()
	return p, nil
}

func (rt *Runtime) register(base pmem.Addr) (*Pool, error) {
	var id uid.UUID
	rt.dev.Load(base+hOffUUID, id[:])
	pid := uuid64(id)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, open := rt.pools[pid]; open {
		return nil, ErrUUIDOpen
	}
	p := &Pool{
		rt:   rt,
		id:   pid,
		base: base,
		size: rt.dev.LoadU64(base + hOffSize),
	}
	p.uuid = id
	rt.pools[p.id] = p
	if end := base + pmem.Addr(p.size); end > rt.nextBase {
		rt.nextBase = (end + pmem.PageSize - 1) &^ (pmem.PageSize - 1)
	}
	p.rebuildFreeList()
	return p, nil
}

// uuid64 compresses a pool UUID into the 64-bit identity OIDs carry
// (PMDK's uuid_lo).
func uuid64(id uid.UUID) uint64 {
	v := binary.LittleEndian.Uint64(id[:8]) ^ binary.LittleEndian.Uint64(id[8:])
	if v == 0 {
		v = 1
	}
	return v
}

// Close unregisters the pool (pmemobj_close).
func (p *Pool) Close() {
	p.rt.mu.Lock()
	defer p.rt.mu.Unlock()
	delete(p.rt.pools, p.id)
}

// UUID returns the pool's embedded identity.
func (p *Pool) UUID() uid.UUID { return p.uuid }

// Base returns the pool's base address.
func (p *Pool) Base() pmem.Addr { return p.base }

// rebuildFreeList scans nothing: the free list head lives at a fixed
// header offset and links through free blocks (offset-based, so it is
// position independent like PMDK's).
func (p *Pool) rebuildFreeList() {
	p.freeHead = 0 // volatile cache primed lazily from header scans on Alloc
}

// --- OIDs (fat pointers) ---

// OID is a PMEMoid: {pool id, byte offset within pool}.
type OID = pmlib.Ref

// Direct translates an OID to a raw address — PMDK's pmemobj_direct:
// registry lookup + base add. This is the per-dereference cost native
// pointers avoid.
func (rt *Runtime) Direct(o OID) pmem.Addr {
	if o.IsNull() {
		return 0
	}
	rt.mu.RLock()
	p := rt.pools[o.W1]
	rt.mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.base + pmem.Addr(o.W2)
}

func (p *Pool) oid(off uint64) OID { return OID{W1: p.id, W2: off} }

// --- transactions ---

// Tx is a PMDK transaction on a single pool.
type Tx struct {
	p        *Pool
	undoUsed uint64
	redo     []redoRec // volatile until commit (PMDK redo publishing)
	flush    []pmem.Range
	done     bool
}

type redoRec struct {
	off uint64
	val uint64
}

// Begin starts a transaction. PMDK transactions are bound to one pool.
func (p *Pool) Begin() (*Tx, error) {
	p.mu.Lock()
	if p.inTx {
		p.mu.Unlock()
		return nil, ErrTxConflict
	}
	p.inTx = true
	p.mu.Unlock()
	return &Tx{p: p}, nil
}

// Run executes fn in a transaction with commit/abort semantics.
func (p *Pool) Run(fn func(tx *Tx) error) error {
	tx, err := p.Begin()
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			tx.Abort()
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (t *Tx) dev() *pmem.Device { return t.p.rt.dev }

// inPool checks the target lies inside this transaction's pool —
// PMDK cannot log other pools' data (paper Table 1, cross-pool ✗).
func (t *Tx) inPool(addr pmem.Addr, n int) (uint64, error) {
	if addr < t.p.base || addr+pmem.Addr(n) > t.p.base+pmem.Addr(t.p.size) {
		return 0, ErrCrossPool
	}
	return uint64(addr - t.p.base), nil
}

// Add undo-logs [addr, addr+size) — TX_ADD.
func (t *Tx) Add(addr pmem.Addr, size int) error {
	off, err := t.inPool(addr, size)
	if err != nil {
		return err
	}
	dev := t.dev()
	undoBase := t.p.base + hdrSize
	span := uint64(ueHdr) + (uint64(size)+7)&^7
	if uHdr+t.undoUsed+span > undoSize {
		return ErrNoSpace
	}
	at := undoBase + uHdr + pmem.Addr(t.undoUsed)
	old := make([]byte, size)
	dev.Load(addr, old)
	var hdr [ueHdr]byte
	binary.LittleEndian.PutUint64(hdr[8:], off)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(size))
	epoch := dev.LoadU64(undoBase + uOffEpoch)
	ck := crc64.Update(epoch, crcTable, hdr[8:])
	ck = crc64.Update(ck, crcTable, old)
	binary.LittleEndian.PutUint64(hdr[:8], ck)
	dev.Store(at, hdr[:])
	dev.Store(at+ueHdr, old)
	dev.Flush(at, int(span))
	dev.Fence()
	t.undoUsed += span
	dev.StoreU64(undoBase+uOffUsed, t.undoUsed)
	dev.StoreU64(undoBase+uOffValid, 1)
	dev.Persist(undoBase+uOffValid, 24)
	t.flush = append(t.flush, pmem.Range{Start: addr, End: addr + pmem.Addr(size)})
	return nil
}

// Set undo-logs and writes.
func (t *Tx) Set(addr pmem.Addr, data []byte) error {
	if err := t.Add(addr, len(data)); err != nil {
		return err
	}
	t.dev().Store(addr, data)
	return nil
}

// SetU64 undo-logs and writes an 8-byte value.
func (t *Tx) SetU64(addr pmem.Addr, v uint64) error {
	if err := t.Add(addr, 8); err != nil {
		return err
	}
	t.dev().StoreU64(addr, v)
	return nil
}

// SetRef stores a 16-byte OID transactionally.
func (t *Tx) SetRef(addr pmem.Addr, r pmlib.Ref) error {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], r.W1)
	binary.LittleEndian.PutUint64(b[8:], r.W2)
	return t.Set(addr, b[:])
}

// redoSet buffers an allocator-metadata word update; it becomes
// persistent atomically at commit (PMDK's hybrid transactions).
func (t *Tx) redoSet(off uint64, val uint64) {
	t.redo = append(t.redo, redoRec{off, val})
}

// redoRead reads a word as the transaction will see it after commit.
func (t *Tx) redoRead(off uint64) uint64 {
	for i := len(t.redo) - 1; i >= 0; i-- {
		if t.redo[i].off == off {
			return t.redo[i].val
		}
	}
	return t.dev().LoadU64(t.p.base + pmem.Addr(off))
}

// Alloc allocates a zeroed object — TX_NEW. Allocator metadata (bump
// cursor, free-list links) is redo-logged; the allocation publishes at
// commit and vanishes on abort.
func (t *Tx) Alloc(size uint32) (OID, error) {
	need := (uint64(size) + objHdr + 63) &^ 63
	// First-fit from the free list (offset-linked through free blocks,
	// rooted in a header word), falling back to the bump cursor.
	cur := t.redoRead(hOffFreeHead)
	prev := uint64(0)
	for cur != 0 {
		bsz := t.redoRead(cur) // block size in header word 0
		next := t.redoRead(cur + 8)
		if bsz >= need {
			if prev == 0 {
				t.redoSet(hOffFreeHead, next)
			} else {
				t.redoSet(prev+8, next)
			}
			return t.finishAlloc(cur, bsz, size)
		}
		prev, cur = cur, next
	}
	// Bump allocation.
	cursor := t.redoRead(hOffNextFree)
	if cursor+need > t.p.size {
		return pmlib.Null, ErrNoSpace
	}
	t.redoSet(hOffNextFree, cursor+need)
	t.redoSet(cursor, need) // block size
	return t.finishAlloc(cursor, need, size)
}

func (t *Tx) finishAlloc(off, bsz uint64, size uint32) (OID, error) {
	t.redoSet(off+8, 0) // clear free-list link
	payload := off + objHdr
	addr := t.p.base + pmem.Addr(payload)
	t.dev().Zero(addr, int(size))
	t.flush = append(t.flush, pmem.Range{Start: addr, End: addr + pmem.Addr(size)})
	return t.p.oid(payload), nil
}

// Free releases an object — TX_FREE (push onto the free list, redo-
// logged).
func (t *Tx) Free(o OID) error {
	if o.W1 != t.p.id {
		return ErrCrossPool
	}
	block := o.W2 - objHdr
	head := t.redoRead(hOffFreeHead)
	t.redoSet(block+8, head)
	t.redoSet(hOffFreeHead, block)
	return nil
}

// Commit: flush undo-logged locations, publish the redo log, apply it,
// then invalidate both logs.
func (t *Tx) Commit() error {
	if t.done {
		return errors.New("pmdk: transaction finished")
	}
	t.done = true
	dev := t.dev()
	for _, r := range t.flush {
		dev.Flush(r.Start, int(r.Size()))
	}
	dev.Fence()
	if len(t.redo) > 0 {
		redoBase := t.p.base + hdrSize + undoSize
		if rHdr+uint64(len(t.redo))*reSize > redoSize {
			t.abortLocked()
			return ErrNoSpace
		}
		for i, rec := range t.redo {
			at := redoBase + rHdr + pmem.Addr(i*reSize)
			var e [reSize]byte
			binary.LittleEndian.PutUint64(e[8:], rec.off)
			binary.LittleEndian.PutUint64(e[16:], rec.val)
			ck := crc64.Update(0, crcTable, e[8:])
			binary.LittleEndian.PutUint64(e[:8], ck)
			dev.Store(at, e[:])
		}
		dev.StoreU64(redoBase+rOffCount, uint64(len(t.redo)))
		dev.Flush(redoBase, int(rHdr+uint64(len(t.redo))*reSize))
		dev.Fence()
		dev.StoreU64(redoBase+rOffValid, 1)
		dev.Persist(redoBase+rOffValid, 8)
		// Apply.
		for _, rec := range t.redo {
			dev.StoreU64(t.p.base+pmem.Addr(rec.off), rec.val)
			dev.Flush(t.p.base+pmem.Addr(rec.off), 8)
		}
		dev.Fence()
		dev.StoreU64(redoBase+rOffValid, 0)
		dev.Persist(redoBase+rOffValid, 8)
	}
	t.invalidateUndo()
	t.p.mu.Lock()
	t.p.inTx = false
	t.p.mu.Unlock()
	return nil
}

// Abort rolls back: undo entries replay in reverse, the redo buffer is
// discarded.
func (t *Tx) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.abortLocked()
}

func (t *Tx) abortLocked() {
	t.p.applyUndo()
	t.invalidateUndo()
	t.redo = nil
	t.p.mu.Lock()
	t.p.inTx = false
	t.p.mu.Unlock()
}

func (t *Tx) invalidateUndo() {
	dev := t.dev()
	undoBase := t.p.base + hdrSize
	dev.StoreU64(undoBase+uOffEpoch, dev.LoadU64(undoBase+uOffEpoch)+1)
	dev.StoreU64(undoBase+uOffValid, 0)
	dev.StoreU64(undoBase+uOffUsed, 0)
	dev.Persist(undoBase, 24)
	t.undoUsed = 0
}

// applyUndo replays valid undo entries in reverse (abort & recovery).
func (p *Pool) applyUndo() {
	dev := p.rt.dev
	undoBase := p.base + hdrSize
	if dev.LoadU64(undoBase+uOffValid) == 0 {
		return
	}
	epoch := dev.LoadU64(undoBase + uOffEpoch)
	used := dev.LoadU64(undoBase + uOffUsed)
	type entry struct {
		off  uint64
		data []byte
	}
	var entries []entry
	var pos uint64
	for pos+ueHdr <= used {
		at := undoBase + uHdr + pmem.Addr(pos)
		var hdr [ueHdr]byte
		dev.Load(at, hdr[:])
		off := binary.LittleEndian.Uint64(hdr[8:])
		size := binary.LittleEndian.Uint64(hdr[16:])
		span := uint64(ueHdr) + (size+7)&^7
		if pos+span > used {
			break
		}
		data := make([]byte, size)
		dev.Load(at+ueHdr, data)
		ck := crc64.Update(epoch, crcTable, hdr[8:])
		ck = crc64.Update(ck, crcTable, data)
		if ck != binary.LittleEndian.Uint64(hdr[:8]) {
			break
		}
		entries = append(entries, entry{off, data})
		pos += span
	}
	for i := len(entries) - 1; i >= 0; i-- {
		dev.Store(p.base+pmem.Addr(entries[i].off), entries[i].data)
		dev.Flush(p.base+pmem.Addr(entries[i].off), len(entries[i].data))
	}
	dev.Fence()
}

// applyRedo replays a published redo log (recovery only).
func (p *Pool) applyRedo() {
	dev := p.rt.dev
	redoBase := p.base + hdrSize + undoSize
	if dev.LoadU64(redoBase+rOffValid) == 0 {
		return
	}
	n := dev.LoadU64(redoBase + rOffCount)
	for i := uint64(0); i < n; i++ {
		at := redoBase + rHdr + pmem.Addr(i*reSize)
		var e [reSize]byte
		dev.Load(at, e[:])
		if crc64.Update(0, crcTable, e[8:]) != binary.LittleEndian.Uint64(e[:8]) {
			break
		}
		off := binary.LittleEndian.Uint64(e[8:])
		val := binary.LittleEndian.Uint64(e[16:])
		dev.StoreU64(p.base+pmem.Addr(off), val)
		dev.Flush(p.base+pmem.Addr(off), 8)
	}
	dev.Fence()
	dev.StoreU64(redoBase+rOffValid, 0)
	dev.Persist(redoBase+rOffValid, 8)
}

// recover resolves incomplete transactions — runs on pool open only.
func (p *Pool) recover() {
	p.applyUndo()
	dev := p.rt.dev
	undoBase := p.base + hdrSize
	dev.StoreU64(undoBase+uOffEpoch, dev.LoadU64(undoBase+uOffEpoch)+1)
	dev.StoreU64(undoBase+uOffValid, 0)
	dev.StoreU64(undoBase+uOffUsed, 0)
	dev.Persist(undoBase, 24)
	p.applyRedo()
}

// --- root object ---

// Root returns the pool's root object OID, allocating it on first use
// (pmemobj_root).
func (p *Pool) Root(size uint32) (OID, error) {
	dev := p.rt.dev
	if off := dev.LoadU64(p.base + hOffRootOff); off != 0 {
		return p.oid(off), nil
	}
	var out OID
	err := p.Run(func(tx *Tx) error {
		o, err := tx.Alloc(size)
		if err != nil {
			return err
		}
		tx.redoSet(hOffRootOff, o.W2)
		tx.redoSet(hOffRootSize, uint64(size))
		out = o
		return nil
	})
	return out, err
}
