package pmdk

import (
	"encoding/binary"

	"puddles/internal/pmem"
	"puddles/internal/pmlib"
)

// Lib adapts a PMDK runtime + pool to the common workload interface.
type Lib struct {
	rt   *Runtime
	pool *Pool
}

// NewLib boots a PMDK stack with one pool of the given size.
func NewLib(poolSize uint64) (*Lib, error) {
	rt := NewRuntime()
	p, err := rt.Create(poolSize)
	if err != nil {
		return nil, err
	}
	return &Lib{rt: rt, pool: p}, nil
}

// Runtime exposes the underlying runtime.
func (l *Lib) Runtime() *Runtime { return l.rt }

// PoolHandle exposes the underlying pool.
func (l *Lib) PoolHandle() *Pool { return l.pool }

// Name implements pmlib.Lib.
func (l *Lib) Name() string { return "pmdk" }

// RefSize implements pmlib.Lib: PMEMoids are 16 bytes.
func (l *Lib) RefSize() uint32 { return 16 }

// Deref implements pmlib.Lib: registry lookup + add (pmemobj_direct).
func (l *Lib) Deref(r pmlib.Ref) pmem.Addr { return l.rt.Direct(r) }

// LoadRef implements pmlib.Lib: fat pointers load two words.
func (l *Lib) LoadRef(addr pmem.Addr) pmlib.Ref {
	var b [16]byte
	l.rt.dev.Load(addr, b[:])
	return pmlib.Ref{
		W1: binary.LittleEndian.Uint64(b[:8]),
		W2: binary.LittleEndian.Uint64(b[8:]),
	}
}

// StoreRef implements pmlib.Lib.
func (l *Lib) StoreRef(addr pmem.Addr, r pmlib.Ref) {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], r.W1)
	binary.LittleEndian.PutUint64(b[8:], r.W2)
	l.rt.dev.Store(addr, b[:])
}

// Root implements pmlib.Lib.
func (l *Lib) Root(size uint32) (pmlib.Ref, error) { return l.pool.Root(size) }

// Run implements pmlib.Lib.
func (l *Lib) Run(fn func(tx pmlib.Tx) error) error {
	return l.pool.Run(func(tx *Tx) error { return fn(tx) })
}

// Device implements pmlib.Lib.
func (l *Lib) Device() *pmem.Device { return l.rt.dev }

// Close implements pmlib.Lib.
func (l *Lib) Close() error {
	l.pool.Close()
	return nil
}

var _ pmlib.Lib = (*Lib)(nil)
var _ pmlib.Tx = (*Tx)(nil)
