package pmdk

import (
	"testing"

	"puddles/internal/pmem"
	"puddles/internal/pmlib"
)

const poolSize = 16 << 20

func TestCreateOpenRoot(t *testing.T) {
	rt := NewRuntime()
	p, err := rt.Create(poolSize)
	if err != nil {
		t.Fatal(err)
	}
	root, err := p.Root(64)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Direct(root) == 0 {
		t.Fatal("root does not dereference")
	}
	// Reopen in a new runtime ("process") — root persists.
	p.Close()
	rt2 := NewRuntimeOn(rt.Device())
	p2, err := rt2.Open(p.Base())
	if err != nil {
		t.Fatal(err)
	}
	root2, err := p2.Root(64)
	if err != nil {
		t.Fatal(err)
	}
	if root2.W2 != root.W2 {
		t.Fatalf("root offset changed: %#x -> %#x", root.W2, root2.W2)
	}
}

func TestUUIDCloneBlocked(t *testing.T) {
	// The paper's §2.3 restriction: a byte-identical copy of a pool
	// cannot be opened while the original is open, because the UUID is
	// embedded in the pool (and in every fat pointer).
	rt := NewRuntime()
	p, err := rt.Create(poolSize)
	if err != nil {
		t.Fatal(err)
	}
	// Clone the pool bytes to another offset — "cp pool.obj copy.obj".
	dev := rt.Device()
	cloneBase := p.Base() + pmem.Addr(poolSize+pmem.PageSize)
	dev.Copy(cloneBase, p.Base(), poolSize)
	if _, err := rt.Open(cloneBase); err != ErrUUIDOpen {
		t.Fatalf("opening a clone = %v, want ErrUUIDOpen", err)
	}
	// After closing the original, the clone can open (but never both).
	p.Close()
	if _, err := rt.Open(cloneBase); err != nil {
		t.Fatalf("clone after close: %v", err)
	}
}

func TestCrossPoolRejected(t *testing.T) {
	rt := NewRuntime()
	p1, _ := rt.Create(poolSize)
	p2, _ := rt.Create(poolSize)
	root2, _ := p2.Root(64)
	err := p1.Run(func(tx *Tx) error {
		return tx.SetU64(rt.Direct(root2), 1) // write into the other pool
	})
	if err != ErrCrossPool {
		t.Fatalf("cross-pool tx = %v, want ErrCrossPool", err)
	}
}

func TestRecoveryOnlyOnOpen(t *testing.T) {
	// PMDK's model: a crashed transaction leaves the pool inconsistent
	// until some application re-opens it (paper §2.1).
	rt := NewRuntime()
	p, _ := rt.Create(poolSize)
	root, _ := p.Root(64)
	addr := rt.Direct(root)
	p.Run(func(tx *Tx) error { return tx.SetU64(addr, 42) })

	// Crash mid-transaction: simulate by running the undo-log append
	// and data write, then abandoning the tx (no commit, no abort).
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(addr, 8); err != nil {
		t.Fatal(err)
	}
	rt.Device().StoreU64(addr, 999)
	rt.Device().Persist(addr, 8)
	// Process dies. Data is inconsistent on media right now:
	if v := rt.Device().LoadU64(addr); v != 999 {
		t.Fatal("setup failed")
	}
	p.Close()

	// Nothing happens until an application opens the pool...
	rt2 := NewRuntimeOn(rt.Device())
	if v := rt2.Device().LoadU64(addr); v != 999 {
		t.Fatal("data should still be inconsistent before open")
	}
	// ...and then recovery rolls it back.
	if _, err := rt2.Open(p.Base()); err != nil {
		t.Fatal(err)
	}
	if v := rt2.Device().LoadU64(addr); v != 42 {
		t.Fatalf("after open, value = %d, want 42", v)
	}
}

func TestAllocPublishOnCommitOnly(t *testing.T) {
	rt := NewRuntime()
	p, _ := rt.Create(poolSize)
	cursorBefore := rt.Device().LoadU64(p.Base() + hOffNextFree)
	p.Run(func(tx *Tx) error {
		if _, err := tx.Alloc(256); err != nil {
			return err
		}
		// Mid-tx, the persistent cursor is untouched (redo not applied).
		if got := rt.Device().LoadU64(p.Base() + hOffNextFree); got != cursorBefore {
			t.Errorf("allocator metadata mutated before commit")
		}
		return nil
	})
	if got := rt.Device().LoadU64(p.Base() + hOffNextFree); got == cursorBefore {
		t.Fatal("allocator metadata not published at commit")
	}
}

func TestFreeListReuse(t *testing.T) {
	rt := NewRuntime()
	p, _ := rt.Create(poolSize)
	var o pmlib.Ref
	p.Run(func(tx *Tx) error {
		var err error
		o, err = tx.Alloc(100)
		return err
	})
	first := o.W2
	p.Run(func(tx *Tx) error { return tx.Free(o) })
	var o2 pmlib.Ref
	p.Run(func(tx *Tx) error {
		var err error
		o2, err = tx.Alloc(100)
		return err
	})
	if o2.W2 != first {
		t.Fatalf("freed block not reused: %#x vs %#x", o2.W2, first)
	}
}

func TestDirectNullAndUnknown(t *testing.T) {
	rt := NewRuntime()
	if rt.Direct(pmlib.Null) != 0 {
		t.Fatal("Direct(null) != 0")
	}
	if rt.Direct(pmlib.Ref{W1: 999, W2: 64}) != 0 {
		t.Fatal("Direct(unknown pool) != 0")
	}
}
