package alloc

import (
	"math/rand"
	"sync"
	"testing"

	"puddles/internal/pmem"
	"puddles/internal/puddle"
	"puddles/internal/uid"
)

// stressHeap drives one heap from `workers` goroutines doing mixed
// small/large alloc/free with the Direct mutator, then checks the
// heap validates and LiveObjects is exact. Run under -race this is
// the concurrency proof for the per-heap mutex.
func stressHeap(t *testing.T, h *Heap, workers, iters int) uint64 {
	t.Helper()
	m := Direct{Dev: h.P.Dev}
	kept := make([]uint64, workers) // per-worker surviving allocations
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			var mine []pmem.Addr
			for i := 0; i < iters; i++ {
				switch {
				case len(mine) > 0 && rng.Intn(3) == 0:
					// Free a random object this worker owns.
					j := rng.Intn(len(mine))
					if err := h.Free(m, mine[j]); err != nil {
						t.Errorf("worker %d: free: %v", w, err)
						return
					}
					mine = append(mine[:j], mine[j+1:]...)
				default:
					size := uint32(8 + rng.Intn(64))
					if rng.Intn(8) == 0 {
						size = uint32(1024 + rng.Intn(4096)) // large path
					}
					a, err := h.Alloc(m, tNode, size)
					if err != nil {
						t.Errorf("worker %d: alloc %d: %v", w, size, err)
						return
					}
					mine = append(mine, a)
				}
			}
			kept[w] = uint64(len(mine))
		}(w)
	}
	wg.Wait()
	var want uint64
	for _, n := range kept {
		want += n
	}
	return want
}

func TestConcurrentAllocFreeOneHeap(t *testing.T) {
	h := newHeap(t, 4<<20)
	want := stressHeap(t, h, 8, 300)
	if t.Failed() {
		return
	}
	if got := h.LiveObjects(); got != want {
		t.Fatalf("LiveObjects = %d, want exactly %d", got, want)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("heap invalid after concurrent stress: %v", err)
	}
}

func TestConcurrentAllocFreeSiblingHeaps(t *testing.T) {
	// Two heaps on one device, each hammered by its own worker pool:
	// sibling heaps in a pool must never serialize (or interfere)
	// through shared state.
	dev := pmem.New()
	mk := func(base pmem.Addr) *Heap {
		p, err := puddle.Format(dev, base, 4<<20, uid.New(), puddle.KindData, uid.Nil)
		if err != nil {
			t.Fatal(err)
		}
		return Format(p, Direct{Dev: dev})
	}
	h1 := mk(0x100000)
	h2 := mk(0x100000 + 8<<20)
	var wg sync.WaitGroup
	want := make([]uint64, 2)
	for i, h := range []*Heap{h1, h2} {
		wg.Add(1)
		go func(i int, h *Heap) {
			defer wg.Done()
			want[i] = stressHeap(t, h, 4, 300)
		}(i, h)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, h := range []*Heap{h1, h2} {
		if got := h.LiveObjects(); got != want[i] {
			t.Fatalf("heap %d: LiveObjects = %d, want exactly %d", i, got, want[i])
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("heap %d invalid after concurrent stress: %v", i, err)
		}
	}
}

func TestLeaseExcludes(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	h.Lease()
	if h.TryLease() {
		t.Fatal("TryLease succeeded while leased")
	}
	done := make(chan struct{})
	go func() {
		h.Lease() // blocks until the holder releases
		h.Unlease()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("blocking Lease acquired while held")
	default:
	}
	h.Unlease()
	<-done
	if !h.TryLease() {
		t.Fatal("TryLease failed on a free heap")
	}
	h.Unlease()
}
