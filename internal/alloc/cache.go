// Worker allocation caches (magazine-style, after "Understanding and
// Optimizing Persistent Memory Allocation"): a CacheEntry parks one
// slab for a single worker, so that worker's small allocs and frees
// touch only the entry — no shared heap lease, no shared mutex — while
// the slab's occupancy bitmap stays undo-logged through the owning
// transaction's Mutator exactly like any other allocator metadata.
//
// Exclusivity moves from the heap to the entry: each CacheEntry
// carries its own transaction-scope lease with the same wait-die
// surface as Heap's, and every bitmap mutation (owner allocs, foreign
// frees) requires it. A parked slab's block-map byte carries bmCached,
// which diverts the shared-heap paths (Heap.Free returns ErrParked;
// Heap.Alloc never sees the slab because parked slabs are not in
// h.slabs), so no transaction can undo-log a parked slab's metadata
// without holding the entry lease.
//
// Crash recovery: a parked slab is findable from its block-map byte
// alone, and a per-worker persistent cache record (64 bytes in the
// puddle-header slack past the block map: owner stamp, slab extent,
// type, class) lets `puddlectl stat`-style tooling attribute it.
// Refills and donations persist MOD-style — all stores batched under
// one fence, with the block-map byte as the atomic commit point — so
// any crash leaves each slab either fully parked or fully unparked.
// Heap.rescan queues parked slabs with no live entry for
// ReclaimParked, which demotes still-populated slabs to ordinary
// slabs and frees empty or torn ones when a writable pool reopens.
package alloc

import (
	"math/bits"
	"sync/atomic"
	"time"

	"puddles/internal/pmem"
	"puddles/internal/ptypes"
)

// Persistent cache-record layout: one 64-byte slot per parked slab in
// the puddle-header slack past the block map. owner == 0 marks a free
// slot; the extent names the slab's block index. The record is an
// attribution aid and recovery cross-check — the block-map byte is
// the authoritative commit point, so a slab parked without a record
// (header slack exhausted) is still reclaimed correctly.
const (
	cacheRecSize = 64
	crOffOwner   = 0  // u64 worker stamp, 0 = slot free
	crOffExtent  = 8  // u64 slab block index
	crOffType    = 16 // u64 type ID
	crOffClass   = 24 // u32 size class
	crOffCount   = 28 // u32 element count
)

// slabWords is the occupancy bitmap size in 64-bit words.
const slabWords = 5

// pendingSlab is a parked slab found on media with no live CacheEntry:
// a crash orphan (or a slab from a previous process life) awaiting
// ReclaimParked. ok is false when the slab header is torn — the carve
// never committed its fence — in which case the block is simply freed.
type pendingSlab struct {
	idx   uint64
	rec   int // cache-record slot describing it, -1 if none
	tid   ptypes.TypeID
	class uint32
	count uint32
	live  uint32
	ok    bool
}

// CacheEntry is one worker's parked slab for one (type, class) pair.
//
// Concurrency: slab-identity fields are immutable after creation.
// freeBits/freeN/emptyAge are guarded by the entry lease (held by the
// owning or a foreign transaction from first touch to commit/abort).
// owner, alive and liveN are atomics readable without the lease:
// owner so a worker can detect adoption-theft of its entry, alive so
// lock-free lookups can skip dead entries, liveN so Heap.LiveObjects
// can census parked slabs without acquiring every entry lease.
type CacheEntry struct {
	h     *Heap
	slab  pmem.Addr
	idx   uint64
	rec   int // persistent record slot, -1 if none
	tid   ptypes.TypeID
	class uint32
	count uint32

	lease   chan struct{}
	leaseTS atomic.Uint64
	owner   atomic.Uint64
	alive   atomic.Bool
	liveN   atomic.Uint32

	// Guarded by the entry lease.
	freeBits [slabWords]uint64 // 1 = slot free
	freeN    uint32
	emptyAge uint32 // commits survived while empty; donation trigger
}

// Heap returns the heap whose block the entry parks.
func (e *CacheEntry) Heap() *Heap { return e.h }

// TypeID returns the slab's object type.
func (e *CacheEntry) TypeID() ptypes.TypeID { return e.tid }

// Class returns the slab's size class.
func (e *CacheEntry) Class() uint32 { return e.class }

// Owner returns the current worker stamp (adoption can change it).
func (e *CacheEntry) Owner() uint64 { return e.owner.Load() }

// Live reports whether the entry still parks its slab. A dead entry
// (donated, unparked, or rolled back) must be dropped by every holder.
func (e *CacheEntry) Live() bool { return e.alive.Load() }

// Full reports whether the slab has no free slot (entry lease held).
func (e *CacheEntry) Full() bool { return e.freeN == 0 }

// Empty reports whether the slab has no live object (entry lease held).
func (e *CacheEntry) Empty() bool { return e.freeN == e.count }

// BumpEmptyAge ages an empty entry by one commit and returns the new
// age; the caller donates entries whose age passes its threshold
// (entry lease held).
func (e *CacheEntry) BumpEmptyAge() uint32 {
	e.emptyAge++
	return e.emptyAge
}

// ResetEmptyAge marks the entry as recently useful — called when a
// transaction commits with the slab non-empty (entry lease held).
func (e *CacheEntry) ResetEmptyAge() { e.emptyAge = 0 }

// Lease blocks until the caller owns the entry (non-transactional
// owners only; transactions must use TryLeaseAs for wait-die).
func (e *CacheEntry) Lease() { e.lease <- struct{}{} }

// TryLeaseAs acquires the entry lease without blocking, recording ts
// for wait-die arbitration. Same contract as Heap.TryLeaseAs.
func (e *CacheEntry) TryLeaseAs(ts uint64) bool {
	select {
	case e.lease <- struct{}{}:
		e.leaseTS.Store(ts)
		return true
	default:
		return false
	}
}

// LeaseOwnerTS reports the holder's transaction timestamp (advisory).
func (e *CacheEntry) LeaseOwnerTS() uint64 { return e.leaseTS.Load() }

// LeaseAsTimeout camps on the entry lease up to d. Same contract as
// Heap.LeaseAsTimeout.
func (e *CacheEntry) LeaseAsTimeout(ts uint64, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case e.lease <- struct{}{}:
		e.leaseTS.Store(ts)
		return true
	case <-t.C:
		return false
	}
}

// Unlease releases the entry lease.
func (e *CacheEntry) Unlease() {
	e.leaseTS.Store(0)
	<-e.lease
}

// Alloc takes the lowest free slot, undo-logging the occupancy bit
// through m, and returns the payload address. ok is false when the
// slab is full. Caller holds the entry lease.
func (e *CacheEntry) Alloc(m Mutator) (pmem.Addr, bool) {
	for w := range e.freeBits {
		word := e.freeBits[w]
		if word == 0 {
			continue
		}
		bit := uint32(bits.TrailingZeros64(word))
		slot := uint32(w)*64 + bit
		e.freeBits[w] &^= 1 << bit
		e.freeN--
		e.h.setSlabBit(m, e.slab, slot, true)
		e.liveN.Add(1)
		addr := e.slab + slabHdrSize + pmem.Addr(slot*e.class)
		m.RegisterNew(addr, int(e.class))
		return addr, true
	}
	return 0, false
}

// Free releases the slot holding addr, undo-logging the occupancy bit
// through m. Caller holds the entry lease (owner or foreign freer).
func (e *CacheEntry) Free(m Mutator, addr pmem.Addr) error {
	if addr < e.slab+slabHdrSize {
		return ErrBadFree
	}
	off := uint64(addr - e.slab - slabHdrSize)
	if off%uint64(e.class) != 0 {
		return ErrBadFree
	}
	slot := uint32(off / uint64(e.class))
	if slot >= e.count || e.freeBits[slot/64]&(1<<(slot%64)) != 0 {
		return ErrBadFree
	}
	e.h.setSlabBit(m, e.slab, slot, false)
	e.freeBits[slot/64] |= 1 << (slot % 64)
	e.freeN++
	e.liveN.Add(^uint32(0))
	return nil
}

// Resync reconciles the entry with media after an abort rolled back
// the slab's occupancy bits (and possibly the carve itself). Caller
// holds the entry lease and has already Rescan()ed the heap.
func (e *CacheEntry) Resync() {
	if e.h.dev.LoadU8(e.h.bmAddr(e.idx))&bmCached == 0 ||
		e.h.dev.LoadU32(e.slab+sOffMagic) != slabMagic {
		// The refill itself was rolled back: the entry is dead.
		e.h.dropEntry(e)
		return
	}
	var freeN uint32
	for w := uint32(0); w < slabWords; w++ {
		word := e.h.dev.LoadU64(e.slab + sOffBitmap + pmem.Addr(w*8))
		e.freeBits[w] = ^word & wordMask(w, e.count)
		freeN += uint32(bits.OnesCount64(e.freeBits[w]))
	}
	e.freeN = freeN
	e.liveN.Store(e.count - freeN)
}

// dropEntry retires a dead entry: deregisters it and returns its
// record slot to the volatile map if media agrees the slot is free.
func (h *Heap) dropEntry(e *CacheEntry) {
	h.mu.Lock()
	if h.parked[e.idx] == e {
		delete(h.parked, e.idx)
	}
	if e.rec >= 0 && e.rec < len(h.recUsed) &&
		h.dev.LoadU64(h.recAddr(e.rec)+crOffOwner) == 0 {
		h.recUsed[e.rec] = false
	}
	h.mu.Unlock()
	e.alive.Store(false)
	e.liveN.Store(0)
	e.freeN = 0
}

func (h *Heap) recAddr(slot int) pmem.Addr {
	return h.recOff + pmem.Addr(slot*cacheRecSize)
}

// takeRec claims a free cache-record slot (h.mu held), or -1.
func (h *Heap) takeRec() int {
	for i, used := range h.recUsed {
		if !used {
			h.recUsed[i] = true
			return i
		}
	}
	return -1
}

// batchDirect stages direct stores and persists them under a single
// fence — the MOD-style one-fence update used by refill and donation.
type batchDirect struct {
	dev *pmem.Device
	fs  pmem.FlushSet
}

func (b *batchDirect) store(addr pmem.Addr, data []byte) {
	b.dev.Store(addr, data)
	b.fs.Add(addr, len(data))
}

func (b *batchDirect) storeU64(addr pmem.Addr, v uint64) {
	b.dev.StoreU64(addr, v)
	b.fs.Add(addr, 8)
}

func (b *batchDirect) flush() {
	b.fs.Flush(b.dev)
	b.dev.Fence()
}

func (h *Heap) newEntry(idx uint64, rec int, owner uint64, tid ptypes.TypeID, class, count uint32) *CacheEntry {
	e := &CacheEntry{
		h: h, slab: h.blockAddr(idx), idx: idx, rec: rec,
		tid: tid, class: class, count: count,
		lease: make(chan struct{}, 1),
	}
	e.owner.Store(owner)
	e.alive.Store(true)
	for w := uint32(0); w < slabWords; w++ {
		e.freeBits[w] = wordMask(w, count)
	}
	e.freeN = count
	return e
}

// writeRecord stages a full cache record for a freshly carved slab.
func writeRecord(w interface {
	store(pmem.Addr, []byte)
	storeU64(pmem.Addr, uint64)
}, ra pmem.Addr, owner, idx uint64, tid ptypes.TypeID, class, count uint32) {
	var zero [cacheRecSize]byte
	w.store(ra, zero[:])
	w.storeU64(ra+crOffOwner, owner)
	w.storeU64(ra+crOffExtent, idx)
	w.storeU64(ra+crOffType, uint64(tid))
	var cc [8]byte
	putU32(cc[:4], class)
	putU32(cc[4:], count)
	w.store(ra+crOffClass, cc[:])
}

// RefillDirect carves a fresh parked slab for (owner, tid, class)
// without joining the caller's transaction: it briefly takes the heap
// lease non-blockingly, pops an exact slab-order free block, and
// persists the carve — zeroed slab header, cache record, and finally
// the bmCached block-map byte — under ONE fence. Every store lands in
// free or record space, so no in-flight undo log can cover it, and
// the block-map byte is the atomic commit point: a crash anywhere
// leaves either a free block (plus an unreferenced record, healed at
// reclaim) or a fully parked slab.
//
// Only an exact-order block qualifies — splitting a larger block
// rewrites multiple map bytes and needs transactional undo (use
// RefillTx). Block 0 is skipped to preserve the fixed root offset of
// fresh puddles. Returns nil when the heap lease is contended or no
// exact block is free; the returned entry is already leased as ts.
func (h *Heap) RefillDirect(ts, owner uint64, tid ptypes.TypeID, class uint32) *CacheEntry {
	if !h.TryLease() {
		return nil
	}
	defer h.Unlease()
	h.mu.Lock()
	defer h.mu.Unlock()
	fl := &h.order[slabOrder]
	idx, found := uint64(0), false
	for i := fl.len() - 1; i >= 0; i-- {
		if fl.items[i] != 0 {
			idx, found = fl.items[i], true
			break
		}
	}
	if !found {
		return nil
	}
	fl.remove(idx)
	h.freeBlks -= 1 << slabOrder
	rec := h.takeRec()
	count := uint32((slabSize - slabHdrSize) / class)
	base := h.blockAddr(idx)
	bd := &batchDirect{dev: h.dev}
	var hdr [slabHdrSize]byte
	bd.store(base, hdr[:])
	bd.storeU64(base+sOffTypeID, uint64(tid))
	var w [8]byte
	putU32(w[:4], slabMagic)
	putU32(w[4:], class)
	bd.store(base+sOffMagic, w[:])
	putU32(w[:4], count)
	bd.store(base+sOffElemCount, w[:4])
	if rec >= 0 {
		writeRecord(bd, h.recAddr(rec), owner, idx, tid, class, count)
	}
	bd.store(h.bmAddr(idx), []byte{bmStart | bmAlloc | bmSlab | bmCached | slabOrder})
	bd.flush() // one fence commits the whole refill
	e := h.newEntry(idx, rec, owner, tid, class, count)
	e.leaseTS.Store(ts)
	e.lease <- struct{}{} // born leased by the refilling transaction
	h.parked[idx] = e
	return e
}

// RefillTx carves a parked slab inside the caller's transaction: all
// stores flow through m (undo-logged), so an abort or crash rolls the
// carve back and Resync retires the entry. The caller must hold the
// heap lease transactionally — this is the cold-start path when no
// exact-order free block exists and the buddy allocator must split.
// The returned entry is already leased as ts.
func (h *Heap) RefillTx(m Mutator, ts, owner uint64, tid ptypes.TypeID, class uint32) (*CacheEntry, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx, err := h.allocBlock(m, slabOrder)
	if err != nil {
		return nil, err
	}
	rec := h.takeRec()
	count := uint32((slabSize - slabHdrSize) / class)
	base := h.blockAddr(idx)
	m.Write(h.bmAddr(idx), []byte{bmStart | bmAlloc | bmSlab | bmCached | slabOrder})
	var hdr [slabHdrSize]byte
	m.Write(base, hdr[:])
	m.WriteU64(base+sOffTypeID, uint64(tid))
	var w [8]byte
	putU32(w[:4], slabMagic)
	putU32(w[4:], class)
	m.Write(base+sOffMagic, w[:])
	putU32(w[:4], count)
	m.Write(base+sOffElemCount, w[:4])
	if rec >= 0 {
		writeRecord(mutatorRecWriter{m}, h.recAddr(rec), owner, idx, tid, class, count)
	}
	e := h.newEntry(idx, rec, owner, tid, class, count)
	e.leaseTS.Store(ts)
	e.lease <- struct{}{}
	h.parked[idx] = e
	return e, nil
}

// mutatorRecWriter adapts a Mutator to writeRecord's staging surface.
type mutatorRecWriter struct{ m Mutator }

func (w mutatorRecWriter) store(a pmem.Addr, d []byte)    { w.m.Write(a, d) }
func (w mutatorRecWriter) storeU64(a pmem.Addr, v uint64) { w.m.WriteU64(a, v) }

// AdoptParked steals an idle parked slab of (tid, class) for a new
// owner — work-stealing for entries orphaned when their worker's
// affinity record was dropped, and load balancing when the heap has
// no free block to carve. The previous owner (if any) discovers the
// theft by validating Owner() on next use. Returns the adopted entry
// leased as ts, or nil.
func (h *Heap) AdoptParked(ts, owner uint64, tid ptypes.TypeID, class uint32) *CacheEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, e := range h.parked {
		if e.tid != tid || e.class != class || !e.Live() {
			continue
		}
		if !e.TryLeaseAs(ts) {
			continue
		}
		if !e.Live() || e.freeN == 0 {
			e.Unlease()
			continue
		}
		e.owner.Store(owner)
		if e.rec >= 0 {
			// One persisted word re-stamps the record.
			h.dev.StoreU64(h.recAddr(e.rec)+crOffOwner, owner)
			h.dev.Persist(h.recAddr(e.rec)+crOffOwner, 8)
		}
		return e
	}
	return nil
}

// DonateBulk returns empty parked slabs to the shared free lists in
// one leased visit: per slab one killed magic, one block-map byte and
// one record clear, all batched under a single fence. Blocks go back
// at slab order without buddy merging — a merge rewrites multiple map
// bytes, breaking single-byte atomicity; later transactional frees
// re-merge opportunistically. Caller holds every entry's lease;
// leased says whether it already holds the heap lease (donation is
// skipped entirely when the lease is contended — it is an
// optimization, never required for correctness). Returns the number
// of slabs donated; donated entries die.
func (h *Heap) DonateBulk(entries []*CacheEntry, leased bool) int {
	if !leased {
		if !h.TryLease() {
			return 0
		}
		defer h.Unlease()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	bd := &batchDirect{dev: h.dev}
	var done []*CacheEntry
	for _, e := range entries {
		if e.h != h || !e.Live() || e.freeN != e.count {
			continue
		}
		bd.store(e.slab+sOffMagic, []byte{0, 0, 0, 0})
		bd.store(h.bmAddr(e.idx), []byte{bmStart | slabOrder})
		if e.rec >= 0 {
			bd.storeU64(h.recAddr(e.rec)+crOffOwner, 0)
		}
		done = append(done, e)
	}
	if len(done) == 0 {
		return 0
	}
	bd.flush() // one fence commits the whole donation
	for _, e := range done {
		h.order[slabOrder].push(e.idx)
		h.freeBlks += 1 << slabOrder
		delete(h.parked, e.idx)
		if e.rec >= 0 {
			h.recUsed[e.rec] = false
		}
		e.alive.Store(false)
	}
	return len(done)
}

// UnparkFull demotes a fully allocated parked slab to an ordinary
// slab: clearing bmCached (one byte) hands the slab back to the
// shared-heap free path, and the record clear rides the same fence.
// Called at commit only — mid-transaction the slab's bitmap bytes may
// sit in the committing transaction's own undo log, but after the log
// reset no in-flight log covers them, and the entry lease excludes
// everyone else until the switch is published. The entry dies; its
// census moves into the heap's liveObjs. A full slab joins no slab
// index (nothing to allocate), exactly like a legacy full slab.
func (h *Heap) UnparkFull(e *CacheEntry) bool {
	if e.h != h || !e.Live() || e.freeN != 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	bd := &batchDirect{dev: h.dev}
	bd.store(h.bmAddr(e.idx), []byte{bmStart | bmAlloc | bmSlab | slabOrder})
	if e.rec >= 0 {
		bd.storeU64(h.recAddr(e.rec)+crOffOwner, 0)
	}
	bd.flush()
	delete(h.parked, e.idx)
	if e.rec >= 0 {
		h.recUsed[e.rec] = false
	}
	e.alive.Store(false)
	h.liveObjs += uint64(e.liveN.Load())
	e.liveN.Store(0)
	return true
}

// ParkedAt returns the live cache entry owning the parked slab that
// contains addr, or nil. The caller must lease the entry and recheck
// Live() before trusting it (the entry can die concurrently).
func (h *Heap) ParkedAt(addr pmem.Addr) *CacheEntry {
	if addr < h.P.HeapBase() || addr >= h.P.Base+pmem.Addr(h.P.Size()) {
		return nil
	}
	idx := h.blockIdx(addr) &^ ((1 << slabOrder) - 1)
	h.mu.Lock()
	e := h.parked[idx]
	h.mu.Unlock()
	if e == nil || !e.Live() {
		return nil
	}
	return e
}

// ParkedSlabs reports how many slabs are parked (live worker caches)
// or awaiting reclaim.
func (h *Heap) ParkedSlabs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.parked) + len(h.pending)
}

// scanParked reads a crash-orphaned parked slab's header (h.mu held).
func (h *Heap) scanParked(idx uint64) pendingSlab {
	base := h.blockAddr(idx)
	ps := pendingSlab{idx: idx, rec: -1}
	if h.dev.LoadU32(base+sOffMagic) != slabMagic {
		return ps // torn carve: the refill fence never committed
	}
	ps.class = h.dev.LoadU32(base + sOffElemSize)
	ps.count = h.dev.LoadU32(base + sOffElemCount)
	ps.tid = ptypes.TypeID(h.dev.LoadU64(base + sOffTypeID))
	if ps.class == 0 || ps.count == 0 || ps.count != uint32((slabSize-slabHdrSize)/ps.class) {
		return ps
	}
	ps.ok = true
	for w := uint32(0); w*64 < ps.count; w++ {
		word := h.dev.LoadU64(base+sOffBitmap+pmem.Addr(w*8)) & wordMask(w, ps.count)
		ps.live += uint32(bits.OnesCount64(word))
	}
	return ps
}

// ReclaimParked folds crash-orphaned parked slabs back into the heap:
// slabs with live objects are demoted to ordinary slabs (clear
// bmCached — allocation and free work on them again), empty or torn
// ones are freed, and orphaned records are healed. Idempotent and
// re-crash-safe: every step is an independent small write, and a
// re-run resolves whatever subset persisted. Called with a Direct
// mutator when a writable pool opens. Returns the number of slabs
// reclaimed.
func (h *Heap) ReclaimParked(m Mutator) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, ps := range h.pending {
		b := h.dev.LoadU8(h.bmAddr(ps.idx))
		if b&bmCached == 0 {
			continue
		}
		base := h.blockAddr(ps.idx)
		if ps.ok && ps.live > 0 {
			m.Write(h.bmAddr(ps.idx), []byte{b &^ bmCached})
			h.liveObjs += uint64(ps.live)
			if ps.live < ps.count {
				k := slabKey{ps.tid, ps.class}
				h.slabs[k] = append(h.slabs[k], base)
			}
		} else {
			m.Write(base+sOffMagic, []byte{0, 0, 0, 0})
			m.Write(h.bmAddr(ps.idx), []byte{bmStart | slabOrder})
			h.order[slabOrder].push(ps.idx)
			h.freeBlks += 1 << slabOrder
		}
		if ps.rec >= 0 {
			m.WriteU64(h.recAddr(ps.rec)+crOffOwner, 0)
			h.recUsed[ps.rec] = false
		}
		n++
	}
	h.pending = h.pending[:0]
	for _, slot := range h.healRecs {
		m.WriteU64(h.recAddr(slot)+crOffOwner, 0)
		h.recUsed[slot] = false
	}
	h.healRecs = h.healRecs[:0]
	return n
}
