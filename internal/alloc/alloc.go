// Package alloc implements the per-puddle two-level object allocator
// (paper §4.5).
//
// Small allocations (≤ 256 B) are served from per-type slab pages;
// large allocations come from a per-puddle buddy allocator. Every
// object carries its type ID in allocator metadata — slabs store one
// type ID per page, large blocks store an object header — which lets
// the relocation engine enumerate every (object, type) pair in a
// puddle and, with the registered pointer maps, find every pointer.
//
// Persistent metadata is one byte per 1 KiB heap block in the puddle
// header (the block map), plus in-heap slab headers. All metadata
// mutations flow through a Mutator so they are undo-logged inside
// transactions exactly like application data; volatile free lists and
// slab indexes are rebuilt by scanning the block map on open.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"puddles/internal/pmem"
	"puddles/internal/ptypes"
	"puddles/internal/puddle"
)

// Mutator performs crash-consistent writes on behalf of the allocator.
// Inside a transaction the implementation undo-logs the target range
// before writing (and persists the log entry first); outside one it
// writes through and persists immediately.
type Mutator interface {
	// Write stores data at addr with undo protection.
	Write(addr pmem.Addr, data []byte)
	// WriteU64 stores a little-endian uint64 with undo protection.
	WriteU64(addr pmem.Addr, v uint64)
	// RegisterNew notes a freshly allocated payload so the transaction
	// flushes it at commit. It is not logged: if the transaction
	// aborts, the allocation itself is rolled back.
	RegisterNew(addr pmem.Addr, size int)
}

// Direct is a Mutator for use outside transactions: writes go straight
// to the device and are persisted immediately.
type Direct struct{ Dev *pmem.Device }

// Write implements Mutator.
func (d Direct) Write(addr pmem.Addr, data []byte) {
	d.Dev.Store(addr, data)
	d.Dev.Persist(addr, len(data))
}

// WriteU64 implements Mutator.
func (d Direct) WriteU64(addr pmem.Addr, v uint64) {
	d.Dev.StoreU64(addr, v)
	d.Dev.Persist(addr, 8)
}

// RegisterNew implements Mutator. Outside a transaction the caller is
// responsible for persisting payload writes.
func (d Direct) RegisterNew(addr pmem.Addr, size int) {}

// Block map byte encoding: 0 marks the interior of a block; a start
// byte carries the block's order in the low nibble plus flag bits.
const (
	bmStart  = 0x10
	bmAlloc  = 0x20
	bmSlab   = 0x40
	bmCached = 0x80 // slab parked in a worker's allocation cache
	bmOrder  = 0x0f
	maxOrder = 15 // 1 KiB << 15 = 32 MiB, far above any puddle heap here

	// SmallMax is the largest allocation served by slabs.
	SmallMax = 256
	// slabOrder: slabs are 4 KiB buddy blocks.
	slabOrder = 2
	slabSize  = puddle.BlockSize << slabOrder

	// In-slab header layout.
	slabMagic     = 0x534c4142 // "SLAB"
	slabHdrSize   = 64
	sOffMagic     = 0  // u32
	sOffElemSize  = 4  // u32
	sOffElemCount = 8  // u32
	sOffTypeID    = 16 // u64
	sOffBitmap    = 24 // 40 bytes -> 320 bits, enough for 252 elems

	// Large-object header preceding the payload.
	ObjHdrSize = 16
	oOffType   = 0 // u64
	oOffSize   = 8 // u64
)

// Size classes for slab allocations.
var classes = [...]uint32{16, 32, 64, 128, 256}

func classFor(size uint32) (uint32, bool) {
	for _, c := range classes {
		if size <= c {
			return c, true
		}
	}
	return 0, false
}

// ClassFor returns the slab size class serving size-byte allocations,
// or false when the size is served by the buddy path instead.
func ClassFor(size uint32) (uint32, bool) { return classFor(size) }

// Errors.
var (
	ErrNoSpace  = errors.New("alloc: puddle heap has no room for this allocation")
	ErrTooLarge = errors.New("alloc: allocation exceeds puddle heap capacity")
	ErrBadFree  = errors.New("alloc: free of an address that is not an allocated object")
	ErrBadSize  = errors.New("alloc: allocation size must be positive")
	// ErrParked marks an operation on a block owned by a worker's
	// allocation cache: the caller must go through the owning
	// CacheEntry (see ParkedAt) instead of the shared heap path.
	ErrParked = errors.New("alloc: block is parked in a worker allocation cache")
)

type slabKey struct {
	typeID ptypes.TypeID
	class  uint32
}

// freeList is one order's free set: a slice giving deterministic pop
// order plus a position index, so membership tests and arbitrary
// removals (buddy detach during merge) are O(1) instead of a linear
// scan over the whole list.
type freeList struct {
	items []uint64
	pos   map[uint64]int
}

func (f *freeList) len() int { return len(f.items) }

func (f *freeList) push(idx uint64) {
	if f.pos == nil {
		f.pos = make(map[uint64]int)
	}
	f.pos[idx] = len(f.items)
	f.items = append(f.items, idx)
}

// pop removes and returns the most recently pushed block.
func (f *freeList) pop() uint64 {
	idx := f.items[len(f.items)-1]
	f.items = f.items[:len(f.items)-1]
	delete(f.pos, idx)
	return idx
}

// remove detaches a specific block, reporting whether it was present.
// The vacated slot is filled by the last element (order of the free
// list is not meaningful beyond determinism).
func (f *freeList) remove(idx uint64) bool {
	i, ok := f.pos[idx]
	if !ok {
		return false
	}
	last := len(f.items) - 1
	moved := f.items[last]
	f.items[i] = moved
	f.pos[moved] = i
	f.items = f.items[:last]
	delete(f.pos, idx)
	return true
}

func (f *freeList) has(idx uint64) bool {
	_, ok := f.pos[idx]
	return ok
}

func (f *freeList) reset() {
	f.items = f.items[:0]
	for k := range f.pos {
		delete(f.pos, k)
	}
}

// Heap manages one puddle's heap.
//
// Concurrency: every exported method takes the heap's own mutex, so a
// Heap is safe for concurrent use by multiple goroutines — allocation
// safety lives with the heap, not with the owning pool. Transactions
// need a stronger guarantee than per-call atomicity: allocator
// metadata is undo-logged, so two in-flight transactions interleaving
// on one heap would capture each other's uncommitted metadata bytes in
// their undo logs, making abort rollback (and multi-log crash
// recovery) unsound. The lease (Lease/TryLease/Unlease) grants that
// transaction-scope exclusivity; see the method comments.
type Heap struct {
	P   *puddle.Puddle
	dev *pmem.Device

	mu       sync.Mutex
	blocks   uint64
	order    [maxOrder + 1]freeList // per-order free sets
	slabs    map[slabKey][]pmem.Addr
	liveObjs uint64 // live objects outside parked slabs
	freeBlks uint64

	// Worker allocation-cache state (cache.go). parked maps a slab's
	// block index to the live CacheEntry owning it; pending holds
	// parked slabs found on media with no live entry (crash orphans,
	// folded back in by ReclaimParked). The persistent cache-record
	// region in the puddle header tracks one 64-byte record per parked
	// slab: recOff/recSlots give its geometry (recOff 0 = no region),
	// recUsed the volatile slot map, healRecs record slots whose
	// extent no longer names a parked slab (crash between a
	// donation/unpark's block-map write and its record clear).
	parked   map[uint64]*CacheEntry
	pending  []pendingSlab
	recOff   pmem.Addr
	recSlots int
	recUsed  []bool
	healRecs []int

	lease   chan struct{} // transaction-scope ownership token
	leaseTS atomic.Uint64 // owner's transaction timestamp (0 = non-transactional owner)
}

// NewHeap opens the heap of a formatted puddle, rebuilding volatile
// state (free lists, slab indexes) from the persistent block map.
func NewHeap(p *puddle.Puddle) *Heap {
	h := &Heap{
		P: p, dev: p.Dev, blocks: p.Blocks(),
		slabs:  make(map[slabKey][]pmem.Addr),
		parked: make(map[uint64]*CacheEntry),
		lease:  make(chan struct{}, 1),
	}
	// Cache-record region: the slack between the block map and the end
	// of the puddle header, carved into 64-byte slots.
	off := (uint64(puddle.BlockMapOff) + h.blocks + cacheRecSize - 1) &^ (cacheRecSize - 1)
	if off+cacheRecSize <= p.HeaderBytes() {
		h.recOff = p.Base + pmem.Addr(off)
		h.recSlots = int((p.HeaderBytes() - off) / cacheRecSize)
		h.recUsed = make([]bool, h.recSlots)
	}
	h.rescan()
	return h
}

// Lease blocks until the caller holds transaction-scope ownership of
// the heap. While leased, only the owner may run mutating operations
// (Alloc/AllocLarge/Free/Rescan); the per-call mutex alone is not
// enough for transactions because their undo logs must not cover
// metadata bytes another in-flight transaction is mutating.
//
// Lease leaves the owner timestamp at zero, marking a short-lived
// non-transactional owner (Malloc, Pool.Free, CreateRoot). Such owners
// hold exactly one lease and never wait while holding it, so they can
// never participate in a lease deadlock cycle — transactions may
// always wait for them. Transactions themselves must use TryLeaseAs so
// their age is visible to the wait-die arbitration in internal/core.
func (h *Heap) Lease() { h.lease <- struct{}{} }

// TryLease acquires the lease without blocking, reporting success.
func (h *Heap) TryLease() bool { return h.TryLeaseAs(0) }

// TryLeaseAs acquires the lease without blocking and records ts as the
// owner's transaction timestamp for deadlock arbitration.
func (h *Heap) TryLeaseAs(ts uint64) bool {
	select {
	case h.lease <- struct{}{}:
		h.leaseTS.Store(ts)
		return true
	default:
		return false
	}
}

// LeaseOwnerTS reports the current owner's transaction timestamp: 0
// when the heap is unleased or leased by a non-transactional owner.
// It is advisory — the owner can change concurrently — which is all
// wait-die needs (a stale read only delays or retries arbitration, it
// never lets two owners coexist).
func (h *Heap) LeaseOwnerTS() uint64 { return h.leaseTS.Load() }

// LeaseAsTimeout blocks up to d for the lease, recording ts on
// success. Blocking parks the caller on the lease channel itself, so a
// release hands the lease to a camped waiter ahead of any freshly
// arriving TryLease — that fairness is what prevents livelock between
// a wait-die waiter and a fast retry loop. The timeout bounds how long
// a caller may camp before re-running its deadlock arbitration (the
// owner may have changed underneath it).
func (h *Heap) LeaseAsTimeout(ts uint64, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case h.lease <- struct{}{}:
		h.leaseTS.Store(ts)
		return true
	case <-t.C:
		return false
	}
}

// Unlease releases a lease taken with Lease, TryLease or TryLeaseAs.
func (h *Heap) Unlease() {
	h.leaseTS.Store(0)
	<-h.lease
}

// Format initialises an empty heap: the block map is carved into the
// largest aligned buddy blocks that fit, all free.
func Format(p *puddle.Puddle, m Mutator) *Heap {
	blocks := p.Blocks()
	bm := make([]byte, blocks)
	var i uint64
	for i < blocks {
		o := largestOrderAt(i, blocks-i)
		bm[i] = bmStart | byte(o)
		i += 1 << o
	}
	m.Write(p.BlockMapAddr(), bm)
	return NewHeap(p)
}

// largestOrderAt returns the biggest order whose block is aligned at
// index i and fits within rem blocks.
func largestOrderAt(i, rem uint64) uint {
	var o uint = 0
	for o < maxOrder {
		n := uint(o + 1)
		if i%(1<<n) != 0 || (uint64(1)<<n) > rem {
			break
		}
		o = n
	}
	return o
}

func (h *Heap) bmAddr(idx uint64) pmem.Addr { return h.P.BlockMapAddr() + pmem.Addr(idx) }

func (h *Heap) blockAddr(idx uint64) pmem.Addr {
	return h.P.HeapBase() + pmem.Addr(idx*puddle.BlockSize)
}

func (h *Heap) blockIdx(addr pmem.Addr) uint64 {
	return uint64(addr-h.P.HeapBase()) / puddle.BlockSize
}

// Rescan rebuilds the volatile free lists and slab index from the
// persistent block map. Transactions call it after an abort rolls the
// block map back underneath the volatile state.
func (h *Heap) Rescan() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rescan()
}

// rescan rebuilds the volatile free lists and slab index from the
// persistent block map (done on every open, like PMDK).
func (h *Heap) rescan() {
	for o := range h.order {
		h.order[o].reset()
	}
	h.slabs = make(map[slabKey][]pmem.Addr)
	h.liveObjs = 0
	h.freeBlks = 0
	h.pending = h.pending[:0]
	h.healRecs = h.healRecs[:0]
	for i := range h.recUsed {
		h.recUsed[i] = false
	}
	bm := make([]byte, h.blocks)
	h.dev.Load(h.P.BlockMapAddr(), bm)
	var i uint64
	for i < h.blocks {
		b := bm[i]
		if b&bmStart == 0 {
			i++ // torn map byte or interior; skip defensively
			continue
		}
		o := uint(b & bmOrder)
		switch {
		case b&bmAlloc == 0:
			h.order[o].push(i)
			h.freeBlks += 1 << o
		case b&bmCached != 0:
			// Parked in a worker cache. A live entry is the authority
			// for its slab's accounting (rescan runs under an abort
			// whose rollback may concern other blocks entirely);
			// without one this is a crash orphan, queued for
			// ReclaimParked.
			if e := h.parked[i]; e == nil || !e.Live() {
				h.pending = append(h.pending, h.scanParked(i))
			}
		case b&bmSlab != 0:
			h.scanSlab(h.blockAddr(i))
		default:
			h.liveObjs++
		}
		i += 1 << o
	}
	h.rescanRecords(bm)
}

// rescanRecords rebuilds the volatile cache-record slot map and the
// heal list from the persistent record region, then attaches record
// slots to the pending slabs they describe.
func (h *Heap) rescanRecords(bm []byte) {
	if h.recSlots == 0 {
		return
	}
	seen := make(map[uint64]int)
	for s := 0; s < h.recSlots; s++ {
		ra := h.recAddr(s)
		if h.dev.LoadU64(ra+crOffOwner) == 0 {
			continue
		}
		h.recUsed[s] = true
		ext := h.dev.LoadU64(ra + crOffExtent)
		if ext >= h.blocks || bm[ext]&(bmStart|bmCached) != bmStart|bmCached {
			h.healRecs = append(h.healRecs, s)
			continue
		}
		if _, dup := seen[ext]; dup {
			h.healRecs = append(h.healRecs, s)
			continue
		}
		seen[ext] = s
	}
	for i := range h.pending {
		if s, ok := seen[h.pending[i].idx]; ok {
			h.pending[i].rec = s
		}
	}
}

func (h *Heap) scanSlab(base pmem.Addr) {
	if h.dev.LoadU32(base+sOffMagic) != slabMagic {
		return
	}
	class := h.dev.LoadU32(base + sOffElemSize)
	count := h.dev.LoadU32(base + sOffElemCount)
	tid := ptypes.TypeID(h.dev.LoadU64(base + sOffTypeID))
	var buf [40]byte
	used := 0
	for i, b := range h.loadBitmap(base, count, &buf) {
		for j := 0; j < 8; j++ {
			e := uint32(i*8 + j)
			if e >= count {
				break
			}
			if b&(1<<j) != 0 {
				used++
			}
		}
	}
	h.liveObjs += uint64(used)
	if used < int(count) {
		k := slabKey{tid, class}
		h.slabs[k] = append(h.slabs[k], base)
	}
}

func (h *Heap) slabBit(slab pmem.Addr, e uint32) bool {
	b := h.dev.LoadU8(slab + sOffBitmap + pmem.Addr(e/8))
	return b&(1<<(e%8)) != 0
}

// loadBitmap reads a slab's occupancy bitmap in one device access.
func (h *Heap) loadBitmap(slab pmem.Addr, count uint32, buf *[40]byte) []byte {
	n := (count + 7) / 8
	h.dev.Load(slab+sOffBitmap, buf[:n])
	return buf[:n]
}

// findFreeSlot returns the first free element index, or -1. The
// occupancy bitmap is 8-byte aligned (sOffBitmap = 24 off a 4 KiB
// block), so the scan runs one word at a time: the first word with a
// zero bit locates the slot via trailing-zeros on its complement.
// Bits beyond count are never set, so a full slab resolves to a slot
// index >= count exactly once, in the last word.
func (h *Heap) findFreeSlot(slab pmem.Addr, count uint32) int32 {
	for w := uint32(0); w*64 < count; w++ {
		inv := ^h.dev.LoadU64(slab + sOffBitmap + pmem.Addr(w*8))
		if inv == 0 {
			continue
		}
		e := w*64 + uint32(bits.TrailingZeros64(inv))
		if e >= count {
			return -1
		}
		return int32(e)
	}
	return -1
}

// slabEmpty reports whether no element of the slab is allocated.
func (h *Heap) slabEmpty(slab pmem.Addr, count uint32) bool {
	for w := uint32(0); w*64 < count; w++ {
		if h.dev.LoadU64(slab+sOffBitmap+pmem.Addr(w*8)) != 0 {
			return false
		}
	}
	return true
}

// wordMask returns the valid-bit mask for word w of a count-element
// occupancy bitmap.
func wordMask(w, count uint32) uint64 {
	if w*64 >= count {
		return 0
	}
	if rem := count - w*64; rem < 64 {
		return (uint64(1) << rem) - 1
	}
	return ^uint64(0)
}

func (h *Heap) setSlabBit(m Mutator, slab pmem.Addr, e uint32, v bool) {
	a := slab + sOffBitmap + pmem.Addr(e/8)
	b := h.dev.LoadU8(a)
	if v {
		b |= 1 << (e % 8)
	} else {
		b &^= 1 << (e % 8)
	}
	m.Write(a, []byte{b})
}

// allocBlock removes a free block of exactly the given order, splitting
// larger blocks as needed. The block at heap start is preferred while
// free: the first allocation of a fresh puddle therefore lands at the
// fixed root offset (paper §4.5: "the object allocator always
// allocates the first object at a fixed offset"), and growth stays
// dense at low addresses.
func (h *Heap) allocBlock(m Mutator, want uint) (uint64, error) {
	var idx uint64
	var o uint
	if b0 := h.dev.LoadU8(h.bmAddr(0)); b0&bmStart != 0 && b0&bmAlloc == 0 && uint(b0&bmOrder) >= want {
		o = uint(b0 & bmOrder)
		if !h.order[o].remove(0) {
			return 0, fmt.Errorf("alloc: free list desynchronized at block 0")
		}
	} else {
		o = want
		for o <= maxOrder && h.order[o].len() == 0 {
			o++
		}
		if o > maxOrder {
			return 0, ErrNoSpace
		}
		idx = h.order[o].pop()
	}
	// Split down to the requested order, keeping the low half.
	for o > want {
		o--
		buddy := idx + (1 << o)
		m.Write(h.bmAddr(buddy), []byte{bmStart | byte(o)})
		h.order[o].push(buddy)
	}
	h.freeBlks -= 1 << want
	return idx, nil
}

// freeBlock returns a block to the free lists, merging buddies.
func (h *Heap) freeBlock(m Mutator, idx uint64, o uint) {
	h.freeBlks += 1 << o
	for o < maxOrder {
		buddy := idx ^ (1 << o)
		if buddy >= h.blocks {
			break
		}
		// Detach the buddy and merge; O(1) via the position index.
		if !h.order[o].remove(buddy) {
			break
		}
		lo := idx
		if buddy < idx {
			lo = buddy
		}
		hi := lo + (1 << o)
		m.Write(h.bmAddr(hi), []byte{0})
		idx = lo
		o++
	}
	m.Write(h.bmAddr(idx), []byte{bmStart | byte(o)})
	h.order[o].push(idx)
}

// orderForBytes returns the smallest order whose block holds n bytes.
func orderForBytes(n uint64) uint {
	o := uint(0)
	for uint64(puddle.BlockSize)<<o < n {
		o++
	}
	return o
}

// Alloc allocates size bytes typed typeID and returns the payload
// address. The object's contents are undefined (malloc semantics).
func (h *Heap) Alloc(m Mutator, typeID ptypes.TypeID, size uint32) (pmem.Addr, error) {
	if size == 0 {
		return 0, ErrBadSize
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if class, ok := classFor(size); ok {
		return h.allocSmall(m, typeID, class)
	}
	return h.allocLarge(m, typeID, size)
}

// AllocLarge always uses the buddy path, even for small sizes. The
// pool root object is allocated this way so it lands at the fixed root
// offset (paper §4.5).
func (h *Heap) AllocLarge(m Mutator, typeID ptypes.TypeID, size uint32) (pmem.Addr, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocLarge(m, typeID, size)
}

func (h *Heap) allocLarge(m Mutator, typeID ptypes.TypeID, size uint32) (pmem.Addr, error) {
	need := uint64(size) + ObjHdrSize
	o := orderForBytes(need)
	if o > maxOrder || uint64(puddle.BlockSize)<<o > h.P.HeapSize() {
		return 0, ErrTooLarge
	}
	idx, err := h.allocBlock(m, o)
	if err != nil {
		return 0, err
	}
	base := h.blockAddr(idx)
	m.Write(h.bmAddr(idx), []byte{bmStart | bmAlloc | byte(o)})
	m.WriteU64(base+oOffType, uint64(typeID))
	m.WriteU64(base+oOffSize, uint64(size))
	h.liveObjs++
	payload := base + ObjHdrSize
	m.RegisterNew(payload, int(size))
	return payload, nil
}

func (h *Heap) allocSmall(m Mutator, typeID ptypes.TypeID, class uint32) (pmem.Addr, error) {
	k := slabKey{typeID, class}
	for _, slab := range h.slabs[k] {
		count := h.dev.LoadU32(slab + sOffElemCount)
		e := h.findFreeSlot(slab, count)
		if e < 0 {
			h.dropSlab(k, slab) // stale index entry
			continue
		}
		h.setSlabBit(m, slab, uint32(e), true)
		h.liveObjs++
		addr := slab + slabHdrSize + pmem.Addr(uint32(e)*class)
		m.RegisterNew(addr, int(class))
		if h.findFreeSlot(slab, count) < 0 {
			h.dropSlab(k, slab)
		}
		return addr, nil
	}
	// No slab with space: carve a new one.
	idx, err := h.allocBlock(m, slabOrder)
	if err != nil {
		return 0, err
	}
	base := h.blockAddr(idx)
	m.Write(h.bmAddr(idx), []byte{bmStart | bmAlloc | bmSlab | slabOrder})
	count := uint32((slabSize - slabHdrSize) / class)
	var hdr [slabHdrSize]byte
	m.Write(base, hdr[:]) // zero the header (incl. bitmap)
	m.WriteU64(base+sOffTypeID, uint64(typeID))
	var w [8]byte
	putU32(w[:4], slabMagic)
	putU32(w[4:], class)
	m.Write(base+sOffMagic, w[:])
	putU32(w[:4], count)
	m.Write(base+sOffElemCount, w[:4])
	h.setSlabBit(m, base, 0, true)
	h.slabs[k] = append(h.slabs[k], base)
	h.liveObjs++
	addr := base + slabHdrSize
	m.RegisterNew(addr, int(class))
	return addr, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func (h *Heap) fullSlab(slab pmem.Addr, count uint32) bool {
	return h.findFreeSlot(slab, count) < 0
}

func (h *Heap) dropSlab(k slabKey, slab pmem.Addr) {
	lst := h.slabs[k]
	for i, s := range lst {
		if s == slab {
			h.slabs[k] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// findStart locates the buddy block containing heap index idx.
func (h *Heap) findStart(idx uint64) (start uint64, b byte, ok bool) {
	bmBase := h.P.BlockMapAddr()
	for o := uint(0); o <= maxOrder; o++ {
		c := idx &^ ((1 << o) - 1)
		cb := h.dev.LoadU8(bmBase + pmem.Addr(c))
		if cb&bmStart == 0 {
			continue
		}
		co := uint(cb & bmOrder)
		if co >= o && c+(1<<co) > idx {
			return c, cb, true
		}
		return 0, 0, false // found a start that doesn't cover idx
	}
	return 0, 0, false
}

// Free releases the object whose payload starts at addr.
func (h *Heap) Free(m Mutator, addr pmem.Addr) error {
	if addr < h.P.HeapBase() || addr >= h.P.Base+pmem.Addr(h.P.Size()) {
		return ErrBadFree
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := h.blockIdx(addr)
	start, b, ok := h.findStart(idx)
	if !ok || b&bmAlloc == 0 {
		return ErrBadFree
	}
	if b&bmCached != 0 {
		return ErrParked
	}
	base := h.blockAddr(start)
	o := uint(b & bmOrder)
	if b&bmSlab != 0 {
		return h.freeSmall(m, base, addr)
	}
	if addr != base+ObjHdrSize {
		return ErrBadFree
	}
	m.Write(h.bmAddr(start), []byte{bmStart | byte(o)})
	h.liveObjs--
	h.freeBlock(m, start, o)
	return nil
}

func (h *Heap) freeSmall(m Mutator, slab, addr pmem.Addr) error {
	class := h.dev.LoadU32(slab + sOffElemSize)
	count := h.dev.LoadU32(slab + sOffElemCount)
	off := uint64(addr - slab - slabHdrSize)
	if addr < slab+slabHdrSize || off%uint64(class) != 0 || uint32(off/uint64(class)) >= count {
		return ErrBadFree
	}
	e := uint32(off / uint64(class))
	if !h.slabBit(slab, e) {
		return ErrBadFree
	}
	wasFull := h.fullSlab(slab, count)
	h.setSlabBit(m, slab, e, false)
	h.liveObjs--
	tid := ptypes.TypeID(h.dev.LoadU64(slab + sOffTypeID))
	k := slabKey{tid, class}
	idx := h.blockIdx(slab)
	// Empty slab: return the page to the buddy allocator.
	if h.slabEmpty(slab, count) {
		h.dropSlab(k, slab)
		m.Write(slab+sOffMagic, []byte{0, 0, 0, 0}) // kill the slab magic
		m.Write(h.bmAddr(idx), []byte{bmStart | slabOrder})
		h.freeBlock(m, idx, slabOrder)
		return nil
	}
	if wasFull {
		h.slabs[k] = append(h.slabs[k], slab)
	}
	return nil
}

// Object describes one live allocation.
type Object struct {
	Addr   pmem.Addr
	TypeID ptypes.TypeID
	Size   uint32
}

// Objects calls fn for every live object in the heap, in address
// order. Iteration stops if fn returns false. This is the enumeration
// the relocation engine uses to find pointers (paper §4.2). The heap
// lock is held for the duration: fn must not call back into the same
// Heap.
func (h *Heap) Objects(fn func(Object) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bm := make([]byte, h.blocks)
	h.dev.Load(h.P.BlockMapAddr(), bm)
	var i uint64
	for i < h.blocks {
		b := bm[i]
		if b&bmStart == 0 {
			i++
			continue
		}
		o := uint(b & bmOrder)
		base := h.blockAddr(i)
		if b&bmAlloc != 0 {
			if b&bmSlab != 0 {
				class := h.dev.LoadU32(base + sOffElemSize)
				count := h.dev.LoadU32(base + sOffElemCount)
				tid := ptypes.TypeID(h.dev.LoadU64(base + sOffTypeID))
				for e := uint32(0); e < count; e++ {
					if h.slabBit(base, e) {
						obj := Object{base + slabHdrSize + pmem.Addr(e*class), tid, class}
						if !fn(obj) {
							return
						}
					}
				}
			} else {
				tid := ptypes.TypeID(h.dev.LoadU64(base + oOffType))
				size := uint32(h.dev.LoadU64(base + oOffSize))
				if !fn(Object{base + ObjHdrSize, tid, size}) {
					return
				}
			}
		}
		i += 1 << o
	}
}

// SizeOf returns the payload size of the object at addr.
func (h *Heap) SizeOf(addr pmem.Addr) (uint32, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := h.blockIdx(addr)
	start, b, ok := h.findStart(idx)
	if !ok || b&bmAlloc == 0 {
		return 0, ErrBadFree
	}
	base := h.blockAddr(start)
	if b&bmSlab != 0 {
		return h.dev.LoadU32(base + sOffElemSize), nil
	}
	return uint32(h.dev.LoadU64(base + oOffSize)), nil
}

// TypeOf returns the type ID of the object at addr.
func (h *Heap) TypeOf(addr pmem.Addr) (ptypes.TypeID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := h.blockIdx(addr)
	start, b, ok := h.findStart(idx)
	if !ok || b&bmAlloc == 0 {
		return 0, ErrBadFree
	}
	base := h.blockAddr(start)
	if b&bmSlab != 0 {
		return ptypes.TypeID(h.dev.LoadU64(base + sOffTypeID)), nil
	}
	return ptypes.TypeID(h.dev.LoadU64(base + oOffType)), nil
}

// FreeBytes returns a lower bound on allocatable bytes (free buddy
// blocks; slack inside slabs is not counted).
func (h *Heap) FreeBytes() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.freeBlks * puddle.BlockSize
}

// LiveObjects returns the number of live allocations, including
// objects inside parked (worker-cached) slabs and crash-orphaned
// parked slabs awaiting reclaim.
func (h *Heap) LiveObjects() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.liveObjs
	for _, e := range h.parked {
		n += uint64(e.liveN.Load())
	}
	for _, ps := range h.pending {
		n += uint64(ps.live)
	}
	return n
}

// Validate checks heap invariants (block map consistency, no
// overlapping blocks, free-list accuracy) for tests.
func (h *Heap) Validate() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	bm := make([]byte, h.blocks)
	h.dev.Load(h.P.BlockMapAddr(), bm)
	free := make(map[uint64]uint)
	for o := range h.order {
		for _, idx := range h.order[o].items {
			if _, dup := free[idx]; dup {
				return fmt.Errorf("block %d on two free lists", idx)
			}
			free[idx] = uint(o)
		}
	}
	pendingIdx := make(map[uint64]bool, len(h.pending))
	for _, ps := range h.pending {
		pendingIdx[ps.idx] = true
	}
	var i uint64
	covered := uint64(0)
	for i < h.blocks {
		b := bm[i]
		if b&bmStart == 0 {
			return fmt.Errorf("block %d: expected a start byte, got %#x", i, b)
		}
		o := uint(b & bmOrder)
		if i%(1<<o) != 0 {
			return fmt.Errorf("block %d: misaligned for order %d", i, o)
		}
		if i+(1<<o) > h.blocks {
			return fmt.Errorf("block %d: order %d overruns heap", i, o)
		}
		for j := i + 1; j < i+(1<<o); j++ {
			if bm[j] != 0 {
				return fmt.Errorf("block %d: interior byte %d is %#x", i, j, bm[j])
			}
		}
		if b&bmCached != 0 {
			// A parked slab is allocated to exactly one owner: a live
			// worker cache entry, or the pending-reclaim queue.
			if b&bmAlloc == 0 || b&bmSlab == 0 {
				return fmt.Errorf("block %d: cached byte %#x without alloc|slab flags", i, b)
			}
			e := h.parked[i]
			if (e == nil || !e.Live()) && !pendingIdx[i] {
				return fmt.Errorf("parked block %d leaked: no cache entry and no pending reclaim", i)
			}
			if e != nil && e.Live() && pendingIdx[i] {
				return fmt.Errorf("parked block %d double-owned: live cache entry and pending reclaim", i)
			}
		}
		if b&bmAlloc == 0 {
			fo, ok := free[i]
			if !ok || fo != o {
				return fmt.Errorf("free block %d (order %d) missing from free list", i, o)
			}
			delete(free, i)
		}
		covered += 1 << o
		i += 1 << o
	}
	if covered != h.blocks {
		return fmt.Errorf("coverage %d != %d blocks", covered, h.blocks)
	}
	if len(free) != 0 {
		return fmt.Errorf("%d stale free-list entries", len(free))
	}
	return nil
}
