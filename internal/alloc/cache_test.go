package alloc

import (
	"sync"
	"testing"

	"puddles/internal/pmem"
	"puddles/internal/puddle"
	"puddles/internal/uid"
)

// refill carves a parked slab by any means: the direct one-fence path
// when an exact slab-order block is free, else a transactional carve
// under a plain heap lease. Fails the test when the heap is truly full.
func refill(t *testing.T, h *Heap, ts, owner uint64, class uint32) *CacheEntry {
	t.Helper()
	if e := h.RefillDirect(ts, owner, tNode, class); e != nil {
		return e
	}
	h.Lease()
	e, err := h.RefillTx(Direct{Dev: h.P.Dev}, ts, owner, tNode, class)
	h.Unlease()
	if err != nil {
		t.Fatalf("refill: %v", err)
	}
	return e
}

func TestWordMaskBounds(t *testing.T) {
	cases := []struct {
		w, count uint32
		want     uint64
	}{
		{0, 64, ^uint64(0)},
		{0, 3, 0x7},
		{1, 64, 0},  // word entirely past the end
		{4, 252, 0}, // regression: used to underflow to all-ones
		{3, 252, (uint64(1) << 60) - 1},
		{2, 130, 0x3},
	}
	for _, c := range cases {
		if got := wordMask(c.w, c.count); got != c.want {
			t.Errorf("wordMask(%d, %d) = %#x, want %#x", c.w, c.count, got, c.want)
		}
	}
}

func TestRefillDirectOneFence(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	before := h.P.Dev.Stats().Fences
	e := h.RefillDirect(1, 7, tNode, 16)
	if e == nil {
		t.Fatal("RefillDirect found no exact slab-order block on a fresh heap")
	}
	if got := h.P.Dev.Stats().Fences - before; got != 1 {
		t.Fatalf("refill issued %d fences, want exactly 1", got)
	}
	if e.Owner() != 7 || !e.Live() || e.Class() != 16 {
		t.Fatalf("entry owner=%d live=%v class=%d", e.Owner(), e.Live(), e.Class())
	}
	if h.ParkedSlabs() != 1 {
		t.Fatalf("ParkedSlabs = %d, want 1", h.ParkedSlabs())
	}
	// A parked slab is invisible to the shared alloc path but still
	// census-true and Validate-clean.
	if err := h.Validate(); err != nil {
		t.Fatalf("heap with parked slab invalid: %v", err)
	}
	if h.LiveObjects() != 0 {
		t.Fatalf("LiveObjects = %d, want 0", h.LiveObjects())
	}
	e.Unlease()
}

func TestParkedSlabAllocFree(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	e := refill(t, h, 1, 7, 16)
	var addrs []pmem.Addr
	for i := 0; i < 5; i++ {
		a, ok := e.Alloc(m)
		if !ok {
			t.Fatal("fresh entry full")
		}
		addrs = append(addrs, a)
	}
	if h.LiveObjects() != 5 {
		t.Fatalf("LiveObjects = %d, want 5", h.LiveObjects())
	}
	// The shared free path must refuse a parked object and point the
	// caller at the entry — including for objects deep inside the
	// slab's interior blocks.
	for _, a := range addrs {
		if err := h.Free(m, a); err != ErrParked {
			t.Fatalf("Heap.Free(parked) = %v, want ErrParked", err)
		}
		if h.ParkedAt(a) != e {
			t.Fatalf("ParkedAt(%#x) did not find the entry", uint64(a))
		}
	}
	if err := e.Free(m, addrs[0]); err != nil {
		t.Fatal(err)
	}
	if err := e.Free(m, addrs[0]); err != ErrBadFree {
		t.Fatalf("double free via entry = %v, want ErrBadFree", err)
	}
	if h.LiveObjects() != 4 {
		t.Fatalf("LiveObjects = %d, want 4", h.LiveObjects())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	e.Unlease()
}

func TestDonateBulkReturnsSlabs(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	e := refill(t, h, 1, 7, 16)
	a, _ := e.Alloc(m)
	if err := e.Free(m, a); err != nil {
		t.Fatal(err)
	}
	free := h.FreeBytes()
	if n := h.DonateBulk([]*CacheEntry{e}, false); n != 1 {
		t.Fatalf("DonateBulk = %d, want 1", n)
	}
	if e.Live() {
		t.Fatal("donated entry still live")
	}
	if h.ParkedSlabs() != 0 {
		t.Fatalf("ParkedSlabs = %d after donation", h.ParkedSlabs())
	}
	if got := h.FreeBytes(); got != free+slabSize {
		t.Fatalf("FreeBytes = %d, want %d (slab returned)", got, free+slabSize)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// The donated block is immediately re-carvable.
	e2 := h.RefillDirect(2, 8, tNode, 64)
	if e2 == nil {
		t.Fatal("donated slab not re-carvable")
	}
	e2.Unlease()
}

func TestUnparkFullDemotesToSlab(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	e := refill(t, h, 1, 7, 64)
	var last pmem.Addr
	n := 0
	for {
		a, ok := e.Alloc(m)
		if !ok {
			break
		}
		last, n = a, n+1
	}
	want := int((slabSize - slabHdrSize) / 64)
	if n != want {
		t.Fatalf("entry yielded %d objects, want %d", n, want)
	}
	if !e.Full() {
		t.Fatal("exhausted entry not Full")
	}
	if !h.UnparkFull(e) {
		t.Fatal("UnparkFull refused a full entry")
	}
	if e.Live() || h.ParkedSlabs() != 0 {
		t.Fatal("unparked entry still parked")
	}
	if got := h.LiveObjects(); got != uint64(n) {
		t.Fatalf("LiveObjects = %d, want %d after unpark", got, n)
	}
	// The demoted slab is an ordinary slab again: shared frees work.
	if err := h.Free(m, last); err != nil {
		t.Fatalf("Free on unparked slab: %v", err)
	}
	if got := h.LiveObjects(); got != uint64(n-1) {
		t.Fatalf("LiveObjects = %d, want %d", got, n-1)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	e.Unlease()
}

func TestAdoptParkedRestamps(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	e := refill(t, h, 1, 7, 16)
	e.Unlease() // the owning "worker" goes idle
	got := h.AdoptParked(2, 9, tNode, 16)
	if got != e {
		t.Fatal("AdoptParked did not steal the idle entry")
	}
	if got.Owner() != 9 {
		t.Fatalf("adopted owner = %d, want 9", got.Owner())
	}
	// Class or type mismatch must not adopt.
	if h.AdoptParked(3, 10, tNode, 32) != nil {
		t.Fatal("adopted an entry of the wrong class")
	}
	got.Unlease()
}

// TestRescanReclaimsOrphans is the crash shape: parked slabs whose
// process died. A rescan with no live entries queues them; reclaim
// demotes the populated one (census intact) and frees the empty one.
func TestRescanReclaimsOrphans(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	populated := refill(t, h, 1, 7, 16)
	for i := 0; i < 5; i++ {
		if _, ok := populated.Alloc(m); !ok {
			t.Fatal("entry full")
		}
	}
	empty := refill(t, h, 1, 7, 32)

	// "Crash": a fresh Heap over the same media has no entries.
	h2 := NewHeap(h.P)
	if h2.ParkedSlabs() != 2 {
		t.Fatalf("rescan found %d parked slabs, want 2", h2.ParkedSlabs())
	}
	if err := h2.Validate(); err != nil {
		t.Fatalf("heap with pending slabs invalid: %v", err)
	}
	if got := h2.LiveObjects(); got != 5 {
		t.Fatalf("pre-reclaim census = %d, want 5", got)
	}
	if n := h2.ReclaimParked(Direct{Dev: h.P.Dev}); n != 2 {
		t.Fatalf("ReclaimParked = %d, want 2", n)
	}
	if h2.ParkedSlabs() != 0 {
		t.Fatalf("ParkedSlabs = %d after reclaim", h2.ParkedSlabs())
	}
	if got := h2.LiveObjects(); got != 5 {
		t.Fatalf("post-reclaim census = %d, want 5", got)
	}
	if err := h2.Validate(); err != nil {
		t.Fatal(err)
	}
	// The demoted slab serves shared allocations again.
	a, err := h2.Alloc(Direct{Dev: h.P.Dev}, tNode, 16)
	if err != nil {
		t.Fatal(err)
	}
	if h2.LiveObjects() != 6 {
		t.Fatalf("census = %d after alloc", h2.LiveObjects())
	}
	if err := h2.Free(Direct{Dev: h.P.Dev}, a); err != nil {
		t.Fatal(err)
	}
	_ = empty
}

// TestValidateFlagsLeakedParkedBlock: a cached block-map byte with
// neither a live entry nor a pending record is a leak and must fail
// validation (satellite: no false negatives either way).
func TestValidateFlagsLeakedParkedBlock(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	e := refill(t, h, 1, 7, 16)
	if err := h.Validate(); err != nil {
		t.Fatalf("live parked slab flagged: %v", err)
	}
	// Kill the entry without fixing the media byte.
	e.alive.Store(false)
	if err := h.Validate(); err == nil {
		t.Fatal("Validate missed an unowned parked block")
	}
	e.alive.Store(true)
	e.Unlease()
}

// TestParkedCensusConcurrent hammers one heap with per-worker
// park/alloc/free/donate cycles and checks the census is exact at
// every quiescent point. Run with -race.
func TestParkedCensusConcurrent(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	const workers = 4
	const rounds = 8
	var live [workers]uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := Direct{Dev: h.P.Dev}
			ts := uint64(w + 1)
			for r := 0; r < rounds; r++ {
				var e *CacheEntry
				if e = h.RefillDirect(ts, ts, tNode, 16); e == nil {
					h.Lease()
					var err error
					e, err = h.RefillTx(m, ts, ts, tNode, 16)
					h.Unlease()
					if err != nil {
						return // heap exhausted: keep what we have
					}
				}
				var addrs []pmem.Addr
				for i := 0; i < 10; i++ {
					a, ok := e.Alloc(m)
					if !ok {
						break
					}
					addrs = append(addrs, a)
				}
				if r%2 == 0 {
					// Drain and donate the slab back.
					for _, a := range addrs {
						if err := e.Free(m, a); err != nil {
							panic(err)
						}
					}
					h.DonateBulk([]*CacheEntry{e}, false)
					if e.Live() {
						e.Unlease()
						// Contended donation: unpark path still counts.
						continue
					}
				} else {
					live[w] += uint64(len(addrs))
					e.Unlease()
				}
			}
		}(w)
	}
	wg.Wait()
	var want uint64
	for _, n := range live {
		want += n
	}
	if got := h.LiveObjects(); got != want {
		t.Fatalf("census = %d, want exactly %d", got, want)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

// findFreeSlotLinear is the pre-wordscan implementation, kept for the
// before/after microbenchmark.
func (h *Heap) findFreeSlotLinear(slab pmem.Addr, count uint32) int32 {
	var buf [40]byte
	bm := h.loadBitmap(slab, count, &buf)
	for i, b := range bm {
		if b == 0xff {
			continue
		}
		for j := uint32(0); j < 8; j++ {
			e := uint32(i)*8 + j
			if e >= count {
				return -1
			}
			if b&(1<<j) == 0 {
				return int32(e)
			}
		}
	}
	return -1
}

func TestFindFreeSlotMatchesLinear(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	// Drive a slab through fill/free patterns and compare both
	// scanners at every step.
	a, err := h.Alloc(m, tNode, 16)
	if err != nil {
		t.Fatal(err)
	}
	slab := a - slabHdrSize // slot-0 payload sits right after the header
	count := uint32((slabSize - slabHdrSize) / 16)
	check := func() {
		t.Helper()
		if g, w := h.findFreeSlot(slab, count), h.findFreeSlotLinear(slab, count); g != w {
			t.Fatalf("findFreeSlot = %d, linear = %d", g, w)
		}
	}
	var objs []pmem.Addr
	objs = append(objs, a)
	for i := 0; i < 200; i++ {
		check()
		b, err := h.Alloc(m, tNode, 16)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, b)
	}
	for i := 0; i < len(objs); i += 3 {
		if err := h.Free(m, objs[i]); err != nil {
			t.Fatal(err)
		}
		check()
	}
}

func BenchmarkFindFreeSlot(b *testing.B) {
	for _, impl := range []string{"wordscan", "linear"} {
		b.Run(impl, func(b *testing.B) {
			dev := pmem.New()
			p, err := puddle.Format(dev, 0x100000, puddle.DefaultSize, uid.New(), puddle.KindData, uid.Nil)
			if err != nil {
				b.Fatal(err)
			}
			h := Format(p, Direct{Dev: dev})
			m := Direct{Dev: dev}
			// A nearly full slab is the worst case: the scan walks the
			// whole bitmap to find the one free slot near the end.
			a, err := h.Alloc(m, tNode, 16)
			if err != nil {
				b.Fatal(err)
			}
			slab := a - slabHdrSize
			count := uint32((slabSize - slabHdrSize) / 16)
			for i := uint32(1); i < count-1; i++ {
				if _, err := h.Alloc(m, tNode, 16); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if impl == "wordscan" {
					h.findFreeSlot(slab, count)
				} else {
					h.findFreeSlotLinear(slab, count)
				}
			}
		})
	}
}
