package alloc

import (
	"math/rand"
	"testing"

	"puddles/internal/pmem"
	"puddles/internal/ptypes"
	"puddles/internal/puddle"
	"puddles/internal/uid"
)

func newHeap(t *testing.T, size uint64) *Heap {
	t.Helper()
	dev := pmem.New()
	p, err := puddle.Format(dev, 0x100000, size, uid.New(), puddle.KindData, uid.Nil)
	if err != nil {
		t.Fatal(err)
	}
	return Format(p, Direct{Dev: dev})
}

const tNode = ptypes.TypeID(0x1001)

func TestFormatValidates(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	if err := h.Validate(); err != nil {
		t.Fatalf("fresh heap invalid: %v", err)
	}
	if h.LiveObjects() != 0 {
		t.Fatalf("fresh heap has %d live objects", h.LiveObjects())
	}
	if h.FreeBytes() != h.P.HeapSize()/puddle.BlockSize*puddle.BlockSize {
		t.Fatalf("FreeBytes = %d, heap = %d", h.FreeBytes(), h.P.HeapSize())
	}
}

func TestSmallAllocFree(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	a, err := h.Alloc(m, tNode, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(m, tNode, 24)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two allocations at same address")
	}
	// Same slab: 24 B rounds to the 32 B class.
	if s, _ := h.SizeOf(a); s != 32 {
		t.Fatalf("SizeOf = %d, want 32 (class)", s)
	}
	if tid, _ := h.TypeOf(a); tid != tNode {
		t.Fatalf("TypeOf = %#x", tid)
	}
	if h.LiveObjects() != 2 {
		t.Fatalf("LiveObjects = %d", h.LiveObjects())
	}
	if err := h.Free(m, a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(m, b); err != nil {
		t.Fatal(err)
	}
	if h.LiveObjects() != 0 {
		t.Fatalf("LiveObjects after frees = %d", h.LiveObjects())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeAllocFree(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	a, err := h.Alloc(m, tNode, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := h.SizeOf(a); s != 4096 {
		t.Fatalf("SizeOf = %d", s)
	}
	if err := h.Free(m, a); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.FreeBytes() != h.P.HeapSize()/puddle.BlockSize*puddle.BlockSize {
		t.Fatal("free did not coalesce back to full heap")
	}
}

func TestRootAtFixedOffset(t *testing.T) {
	// AllocLarge on a fresh heap must land at the fixed root offset:
	// heap base + object header.
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	a, err := h.AllocLarge(m, tNode, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a != h.P.HeapBase()+ObjHdrSize {
		t.Fatalf("root at %#x, want %#x", uint64(a), uint64(h.P.HeapBase()+ObjHdrSize))
	}
}

func TestAllocZeroAndHuge(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	if _, err := h.Alloc(m, tNode, 0); err != ErrBadSize {
		t.Fatalf("zero alloc = %v", err)
	}
	if _, err := h.Alloc(m, tNode, uint32(h.P.HeapSize())); err != ErrTooLarge {
		t.Fatalf("huge alloc = %v", err)
	}
}

func TestHeapExhaustion(t *testing.T) {
	h := newHeap(t, puddle.MinSize) // 4 KiB heap
	m := Direct{Dev: h.P.Dev}
	var got []pmem.Addr
	for {
		a, err := h.Alloc(m, tNode, 1000)
		if err != nil {
			if err != ErrNoSpace {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		got = append(got, a)
	}
	if len(got) == 0 {
		t.Fatal("no allocations fit in a minimal heap")
	}
	for _, a := range got {
		if err := h.Free(m, a); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBadFree(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	if err := h.Free(m, h.P.HeapBase()+64); err != ErrBadFree {
		t.Fatalf("free of unallocated = %v", err)
	}
	a, _ := h.Alloc(m, tNode, 512)
	if err := h.Free(m, a+8); err != ErrBadFree {
		t.Fatalf("free of interior pointer = %v", err)
	}
	if err := h.Free(m, a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(m, a); err != ErrBadFree {
		t.Fatalf("double free = %v", err)
	}
	if err := h.Free(m, 0x20); err != ErrBadFree {
		t.Fatalf("free outside heap = %v", err)
	}
}

func TestObjectsIteration(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	want := make(map[pmem.Addr]ptypes.TypeID)
	for i := 0; i < 40; i++ {
		tid := ptypes.TypeID(0x2000 + i%3)
		size := uint32(16 + (i%5)*100) // mixes slab and buddy sizes
		a, err := h.Alloc(m, tid, size)
		if err != nil {
			t.Fatal(err)
		}
		want[a] = tid
	}
	got := make(map[pmem.Addr]ptypes.TypeID)
	var last pmem.Addr
	h.Objects(func(o Object) bool {
		if o.Addr <= last {
			t.Fatalf("Objects not in address order: %#x after %#x", uint64(o.Addr), uint64(last))
		}
		last = o.Addr
		got[o.Addr] = o.TypeID
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Objects yielded %d, want %d", len(got), len(want))
	}
	for a, tid := range want {
		if got[a] != tid {
			t.Fatalf("object %#x type %#x, want %#x", uint64(a), got[a], tid)
		}
	}
	// Early stop.
	n := 0
	h.Objects(func(Object) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRescanRebuildsState(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	var addrs []pmem.Addr
	for i := 0; i < 30; i++ {
		a, err := h.Alloc(m, tNode, uint32(20+i*37%400))
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for i := 0; i < len(addrs); i += 2 {
		if err := h.Free(m, addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen: volatile state must match.
	p2, err := puddle.Open(h.P.Dev, h.P.Base)
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHeap(p2)
	if h2.LiveObjects() != h.LiveObjects() {
		t.Fatalf("reopened LiveObjects = %d, want %d", h2.LiveObjects(), h.LiveObjects())
	}
	if h2.FreeBytes() != h.FreeBytes() {
		t.Fatalf("reopened FreeBytes = %d, want %d", h2.FreeBytes(), h.FreeBytes())
	}
	if err := h2.Validate(); err != nil {
		t.Fatal(err)
	}
	// And the reopened heap can keep allocating and freeing.
	for i := 1; i < len(addrs); i += 2 {
		if err := h2.Free(m, addrs[i]); err != nil {
			t.Fatalf("free via reopened heap: %v", err)
		}
	}
	if err := h2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSlabRecycling(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	// Fill more than one slab of a class, then free everything: all
	// pages must coalesce back.
	per := (slabSize - slabHdrSize) / 64
	var addrs []pmem.Addr
	for i := 0; i < int(per)+5; i++ {
		a, err := h.Alloc(m, tNode, 64)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := h.Free(m, a); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.FreeBytes() != h.P.HeapSize()/puddle.BlockSize*puddle.BlockSize {
		t.Fatal("slab pages not returned to buddy allocator")
	}
}

func TestDistinctTypesDistinctSlabs(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	a, _ := h.Alloc(m, ptypes.TypeID(1), 16)
	b, _ := h.Alloc(m, ptypes.TypeID(2), 16)
	ta, _ := h.TypeOf(a)
	tb, _ := h.TypeOf(b)
	if ta == tb {
		t.Fatal("types collapsed")
	}
	// Same class, different types must not share a slab page.
	if a&^(slabSize-1) == b&^(slabSize-1) {
		t.Fatal("different types share a slab")
	}
}

// TestRandomAllocFreeStress drives random alloc/free traffic and
// checks invariants throughout — the allocator's core property test.
func TestRandomAllocFreeStress(t *testing.T) {
	h := newHeap(t, puddle.DefaultSize)
	m := Direct{Dev: h.P.Dev}
	rng := rand.New(rand.NewSource(99))
	type obj struct {
		addr pmem.Addr
		size uint32
	}
	var live []obj
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && (rng.Intn(2) == 0 || len(live) > 500) {
			k := rng.Intn(len(live))
			if err := h.Free(m, live[k].addr); err != nil {
				t.Fatalf("step %d: free: %v", i, err)
			}
			live = append(live[:k], live[k+1:]...)
		} else {
			size := uint32(1 + rng.Intn(3000))
			a, err := h.Alloc(m, ptypes.TypeID(rng.Intn(4)+1), size)
			if err == ErrNoSpace {
				continue
			}
			if err != nil {
				t.Fatalf("step %d: alloc(%d): %v", i, size, err)
			}
			// Write the payload to catch overlap corruption via the
			// validator below.
			h.P.Dev.StoreU64(a, uint64(a))
			live = append(live, obj{a, size})
		}
		if i%500 == 0 {
			if err := h.Validate(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	// No two live payloads may have been corrupted (overlap check).
	for _, o := range live {
		if v := h.P.Dev.LoadU64(o.addr); v != uint64(o.addr) {
			t.Fatalf("payload at %#x corrupted (reads %#x)", uint64(o.addr), v)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if uint64(len(live)) != h.LiveObjects() {
		t.Fatalf("LiveObjects = %d, tracked %d", h.LiveObjects(), len(live))
	}
}

func TestLargestOrderAt(t *testing.T) {
	cases := []struct {
		i, rem uint64
		want   uint
	}{
		{0, 1, 0}, {0, 2, 1}, {0, 3, 1}, {0, 4, 2},
		{0, 2044, 10}, {1024, 1020, 9}, {2, 2, 1}, {1, 100, 0},
	}
	for _, c := range cases {
		if got := largestOrderAt(c.i, c.rem); got != c.want {
			t.Errorf("largestOrderAt(%d,%d) = %d, want %d", c.i, c.rem, got, c.want)
		}
	}
}

func TestOrderForBytes(t *testing.T) {
	if orderForBytes(1) != 0 || orderForBytes(1024) != 0 || orderForBytes(1025) != 1 || orderForBytes(5000) != 3 {
		t.Fatal("orderForBytes wrong")
	}
}
