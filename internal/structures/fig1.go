package structures

import (
	"puddles/internal/pmem"
)

// Fig. 1 microbenchmark: the isolated cost of fat pointers versus
// native pointers, with no transactional machinery in the way. Two
// pointer codecs drive identical list and binary-tree code over a raw
// device region:
//
//   - NativeCodec stores 8-byte addresses; dereference is identity.
//   - FatCodec stores 16-byte {pool-id, offset} pairs; dereference is
//     a pool-table lookup plus an add (PMDK's pmemobj_direct), and the
//     doubled pointer size inflates every node.

// PtrCodec abstracts the pointer representation.
type PtrCodec interface {
	// Size is the stored pointer width in bytes.
	Size() uint32
	// Store encodes target at slot.
	Store(dev *pmem.Device, slot pmem.Addr, target pmem.Addr)
	// Load decodes the pointer at slot.
	Load(dev *pmem.Device, slot pmem.Addr) pmem.Addr
	// Name labels benchmark output.
	Name() string
}

// NativeCodec stores raw addresses (Puddles' representation).
type NativeCodec struct{}

// Size implements PtrCodec.
func (NativeCodec) Size() uint32 { return 8 }

// Name implements PtrCodec.
func (NativeCodec) Name() string { return "native" }

// Store implements PtrCodec.
func (NativeCodec) Store(dev *pmem.Device, slot, target pmem.Addr) {
	dev.StoreU64(slot, uint64(target))
}

// Load implements PtrCodec.
func (NativeCodec) Load(dev *pmem.Device, slot pmem.Addr) pmem.Addr {
	return pmem.Addr(dev.LoadU64(slot))
}

// FatCodec stores {pool id, offset} pairs translated through a pool
// table on every dereference.
type FatCodec struct {
	// Pools maps pool ids to base addresses (the open-pool registry).
	Pools map[uint64]pmem.Addr
	// PoolID and Base describe the single pool targets live in.
	PoolID uint64
	Base   pmem.Addr
}

// NewFatCodec builds a codec with one registered pool.
func NewFatCodec(base pmem.Addr) *FatCodec {
	return &FatCodec{Pools: map[uint64]pmem.Addr{1: base}, PoolID: 1, Base: base}
}

// Size implements PtrCodec.
func (*FatCodec) Size() uint32 { return 16 }

// Name implements PtrCodec.
func (*FatCodec) Name() string { return "fat" }

// Store implements PtrCodec.
func (c *FatCodec) Store(dev *pmem.Device, slot, target pmem.Addr) {
	if target == 0 {
		dev.StoreU64(slot, 0)
		dev.StoreU64(slot+8, 0)
		return
	}
	dev.StoreU64(slot, c.PoolID)
	dev.StoreU64(slot+8, uint64(target-c.Base))
}

// Load implements PtrCodec.
func (c *FatCodec) Load(dev *pmem.Device, slot pmem.Addr) pmem.Addr {
	id := dev.LoadU64(slot)
	if id == 0 {
		return 0
	}
	base, ok := c.Pools[id] // the per-dereference registry lookup
	if !ok {
		return 0
	}
	return base + pmem.Addr(dev.LoadU64(slot+8))
}

// RawList is the Fig. 1 linked list: node = value u64 | next ptr.
type RawList struct {
	dev   *pmem.Device
	codec PtrCodec
	head  pmem.Addr // slot holding the head pointer
	next  pmem.Addr // bump cursor
	end   pmem.Addr
}

// NewRawList prepares a list arena at [base, base+size).
func NewRawList(dev *pmem.Device, codec PtrCodec, base pmem.Addr, size uint64) *RawList {
	l := &RawList{dev: dev, codec: codec, head: base}
	l.next = base + 16
	l.end = base + pmem.Addr(size)
	codec.Store(dev, l.head, 0)
	return l
}

func (l *RawList) nodeSize() pmem.Addr { return pmem.Addr(8 + l.codec.Size()) }

// Build creates n nodes with values 1..n, head-linked (the create
// phase).
func (l *RawList) Build(n int) {
	var prev pmem.Addr
	for i := 1; i <= n; i++ {
		node := l.next
		l.next += l.nodeSize()
		l.dev.StoreU64(node, uint64(i))
		l.codec.Store(l.dev, node+8, 0)
		if prev == 0 {
			l.codec.Store(l.dev, l.head, node)
		} else {
			l.codec.Store(l.dev, prev+8, node)
		}
		prev = node
	}
}

// Traverse sums all node values (the traverse phase).
func (l *RawList) Traverse() uint64 {
	var sum uint64
	for p := l.codec.Load(l.dev, l.head); p != 0; p = l.codec.Load(l.dev, p+8) {
		sum += l.dev.LoadU64(p)
	}
	return sum
}

// RawTree is the Fig. 1 binary tree: node = value u64 | left | right.
type RawTree struct {
	dev   *pmem.Device
	codec PtrCodec
	root  pmem.Addr // slot holding the root pointer
	next  pmem.Addr
}

// NewRawTree prepares a tree arena at base.
func NewRawTree(dev *pmem.Device, codec PtrCodec, base pmem.Addr) *RawTree {
	t := &RawTree{dev: dev, codec: codec, root: base, next: base + 32}
	codec.Store(dev, t.root, 0)
	return t
}

func (t *RawTree) nodeSize() pmem.Addr { return pmem.Addr(8 + 2*t.codec.Size()) }

// Build creates a complete binary tree of the given height (the paper
// uses height 16) with values assigned in construction order.
func (t *RawTree) Build(height int) {
	var build func(h int) pmem.Addr
	counter := uint64(0)
	build = func(h int) pmem.Addr {
		if h == 0 {
			return 0
		}
		node := t.next
		t.next += t.nodeSize()
		counter++
		t.dev.StoreU64(node, counter)
		off := pmem.Addr(t.codec.Size())
		left := build(h - 1)
		right := build(h - 1)
		t.codec.Store(t.dev, node+8, left)
		t.codec.Store(t.dev, node+8+off, right)
		return node
	}
	t.codec.Store(t.dev, t.root, build(height))
}

// TraverseDF sums values depth-first (the paper's DF traversal).
func (t *RawTree) TraverseDF() uint64 {
	off := pmem.Addr(t.codec.Size())
	var sum uint64
	var walk func(n pmem.Addr)
	walk = func(n pmem.Addr) {
		if n == 0 {
			return
		}
		sum += t.dev.LoadU64(n)
		walk(t.codec.Load(t.dev, n+8))
		walk(t.codec.Load(t.dev, n+8+off))
	}
	walk(t.codec.Load(t.dev, t.root))
	return sum
}
