package structures

import (
	"fmt"

	"puddles/internal/core"
	"puddles/internal/pmem"
)

// ShadowQueue is a persistent FIFO committed with the shadow
// discipline. The queue state (head, tail, length) lives in a single
// 64-byte descriptor node that every operation replaces wholesale, so
// one atomic root store flips the whole queue between versions.
//
// Enqueue writes the next pointer of the committed tail node early —
// before the fence — which is benign: the old descriptor's length
// field bounds every traversal, so the old version never dereferences
// that link, and the new version only becomes reachable after the
// fence has hardened it.
//
// Node layout (64-byte slots):
//
//	qdesc: [0] kind  [1] head  [2] tail  [3] len
//	qnode: [0] kind  [1] value [2] next
type ShadowQueue struct {
	s *shadowCore
}

// NewShadowQueue allocates an empty queue descriptor in pool.
func NewShadowQueue(c *core.Client, pool *core.Pool) (*ShadowQueue, error) {
	s, err := newShadowCore(c, pool, descMagicQueue)
	if err != nil {
		return nil, err
	}
	return &ShadowQueue{s: s}, nil
}

// OpenShadowQueue rebinds a descriptor after a crash or reopen.
func OpenShadowQueue(c *core.Client, pool *core.Pool, desc pmem.Addr) (*ShadowQueue, error) {
	s, err := openShadowCore(c, pool, desc, descMagicQueue)
	if err != nil {
		return nil, err
	}
	q := &ShadowQueue{s: s}
	reach := make(map[pmem.Addr]bool)
	n, err := q.mark(reach)
	if err != nil {
		return nil, err
	}
	s.recoverFree(reach)
	s.count = n
	return q, nil
}

// Desc returns the persistent descriptor address.
func (q *ShadowQueue) Desc() pmem.Addr { return q.s.desc }

// Len returns the committed queue length.
func (q *ShadowQueue) Len() int {
	q.s.mu.RLock()
	defer q.s.mu.RUnlock()
	return q.s.count
}

// Sync fences the latest root publish down and recycles limbo slots.
func (q *ShadowQueue) Sync() { q.s.sync() }

// mark walks the committed version: the qdesc, then exactly len nodes
// from head (the last node's next link is never read — it may be a
// pre-fence store for a version that never committed).
func (q *ShadowQueue) mark(reach map[pmem.Addr]bool) (int, error) {
	dev := q.s.dev
	qd := pmem.Addr(dev.LoadU64(q.s.desc + 8))
	if qd == 0 {
		return 0, nil
	}
	if k, err := nodeKind(dev, qd); err != nil {
		return 0, err
	} else if k != snQDesc {
		return 0, fmt.Errorf("%w: queue root kind %d", ErrShadowCorrupt, k)
	}
	reach[qd] = true
	n := int(dev.LoadU64(qd + 24))
	a := pmem.Addr(dev.LoadU64(qd + 8))
	for i := 0; i < n; i++ {
		if a == 0 {
			return 0, fmt.Errorf("%w: queue chain ends after %d of %d nodes", ErrShadowCorrupt, i, n)
		}
		if k, err := nodeKind(dev, a); err != nil {
			return 0, err
		} else if k != snQNode {
			return 0, fmt.Errorf("%w: queue node kind %d", ErrShadowCorrupt, k)
		}
		if reach[a] {
			return 0, fmt.Errorf("%w: queue chain loops at %#x", ErrShadowCorrupt, uint64(a))
		}
		reach[a] = true
		if i < n-1 {
			a = pmem.Addr(dev.LoadU64(a + 16))
		}
	}
	return n, nil
}

// Values returns the committed contents head-first.
func (q *ShadowQueue) Values() []uint64 {
	q.s.mu.RLock()
	defer q.s.mu.RUnlock()
	dev := q.s.dev
	qd := pmem.Addr(dev.LoadU64(q.s.desc + 8))
	if qd == 0 {
		return nil
	}
	n := int(dev.LoadU64(qd + 24))
	out := make([]uint64, 0, n)
	a := pmem.Addr(dev.LoadU64(qd + 8))
	for i := 0; i < n; i++ {
		out = append(out, dev.LoadU64(a+8))
		if i < n-1 {
			a = pmem.Addr(dev.LoadU64(a + 16))
		}
	}
	return out
}

// Enqueue appends v in one shadow commit.
func (q *ShadowQueue) Enqueue(v uint64) error {
	s := q.s
	s.mu.Lock()
	defer s.mu.Unlock()
	var p pend
	err := s.c.RunShadow(s.pool, func(st *core.ShadowTx) error {
		s.reset(&p)
		dev := s.dev
		old := pmem.Addr(dev.LoadU64(s.desc + 8))
		qn, err := s.take(st, &p)
		if err != nil {
			return err
		}
		st.StoreU64(qn, nodeBrand|snQNode)
		st.StoreU64(qn+8, v)
		st.StoreU64(qn+16, 0)
		nd, err := s.take(st, &p)
		if err != nil {
			return err
		}
		if old == 0 {
			writeQDesc(st, nd, qn, qn, 1)
		} else {
			head := dev.LoadU64(old + 8)
			tail := pmem.Addr(dev.LoadU64(old + 16))
			n := dev.LoadU64(old + 24)
			st.StoreU64(tail+16, uint64(qn)) // benign early link (see doc)
			writeQDesc(st, nd, pmem.Addr(head), qn, n+1)
			p.retired = append(p.retired, old)
		}
		return st.Publish(s.desc+8, uint64(nd))
	})
	if err != nil {
		return err
	}
	s.settle(&p, 1)
	return nil
}

// Dequeue pops the head in one shadow commit; ok is false when empty.
func (q *ShadowQueue) Dequeue() (val uint64, ok bool, err error) {
	s := q.s
	s.mu.Lock()
	defer s.mu.Unlock()
	dev := s.dev
	old := pmem.Addr(dev.LoadU64(s.desc + 8))
	if old == 0 || dev.LoadU64(old+24) == 0 {
		return 0, false, nil
	}
	var p pend
	err = s.c.RunShadow(s.pool, func(st *core.ShadowTx) error {
		s.reset(&p)
		head := pmem.Addr(dev.LoadU64(old + 8))
		n := dev.LoadU64(old + 24)
		val = dev.LoadU64(head + 8)
		p.retired = append(p.retired, old, head)
		if n == 1 {
			return st.Publish(s.desc+8, 0)
		}
		nd, err := s.take(st, &p)
		if err != nil {
			return err
		}
		writeQDesc(st, nd, pmem.Addr(dev.LoadU64(head+16)), pmem.Addr(dev.LoadU64(old+16)), n-1)
		return st.Publish(s.desc+8, uint64(nd))
	})
	if err != nil {
		return 0, false, err
	}
	s.settle(&p, -1)
	return val, true, nil
}

// Validate checks the slot census against the committed chain.
func (q *ShadowQueue) Validate() error {
	q.s.mu.RLock()
	defer q.s.mu.RUnlock()
	reach := make(map[pmem.Addr]bool)
	n, err := q.mark(reach)
	if err != nil {
		return err
	}
	if n != q.s.count {
		return fmt.Errorf("%w: volatile count %d, chain holds %d", ErrShadowCorrupt, q.s.count, n)
	}
	return q.s.census(reach)
}

func writeQDesc(st *core.ShadowTx, a, head, tail pmem.Addr, n uint64) {
	st.StoreU64(a, nodeBrand|snQDesc)
	st.StoreU64(a+8, uint64(head))
	st.StoreU64(a+16, uint64(tail))
	st.StoreU64(a+24, n)
}
