package structures

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"puddles/internal/baselines/pmdk"
	"puddles/internal/baselines/puddleslib"
	"puddles/internal/pmem"
	"puddles/internal/pmlib"
)

func libsUnderTest(t *testing.T) []pmlib.Lib {
	t.Helper()
	pl, err := puddleslib.New()
	if err != nil {
		t.Fatal(err)
	}
	pk, err := pmdk.NewLib(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pl.Close(); pk.Close() })
	return []pmlib.Lib{pl, pk}
}

func TestListAppendPopSum(t *testing.T) {
	for _, lib := range libsUnderTest(t) {
		lib := lib
		t.Run(lib.Name(), func(t *testing.T) {
			l, err := NewList(lib)
			if err != nil {
				t.Fatal(err)
			}
			var want uint64
			for i := uint64(1); i <= 200; i++ {
				if err := l.Append(i); err != nil {
					t.Fatal(err)
				}
				want += i
			}
			if got := l.Sum(); got != want {
				t.Fatalf("Sum = %d, want %d", got, want)
			}
			if l.Len() != 200 {
				t.Fatalf("Len = %d", l.Len())
			}
			for i := uint64(1); i <= 200; i++ {
				v, err := l.PopHead()
				if err != nil {
					t.Fatal(err)
				}
				if v != i {
					t.Fatalf("PopHead = %d, want %d", v, i)
				}
			}
			if _, err := l.PopHead(); err == nil {
				t.Fatal("PopHead on empty list succeeded")
			}
			// Reusable after emptying.
			if err := l.Append(7); err != nil {
				t.Fatal(err)
			}
			if l.Len() != 1 {
				t.Fatal("append after empty failed")
			}
		})
	}
}

func TestBTreeInsertSearch(t *testing.T) {
	for _, lib := range libsUnderTest(t) {
		lib := lib
		t.Run(lib.Name(), func(t *testing.T) {
			bt, err := NewBTree(lib)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			ref := make(map[uint64]uint64)
			for i := 0; i < 2000; i++ {
				k := uint64(rng.Intn(5000)) + 1
				v := rng.Uint64()
				if err := bt.Insert(k, v); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
				ref[k] = v
			}
			for k, v := range ref {
				got, ok := bt.Search(k)
				if !ok || got != v {
					t.Fatalf("Search(%d) = %d,%v want %d", k, got, ok, v)
				}
			}
			if _, ok := bt.Search(999999); ok {
				t.Fatal("found absent key")
			}
			// Ordered walk matches the reference.
			var keys []uint64
			bt.Walk(func(k, v uint64) bool {
				keys = append(keys, k)
				if ref[k] != v {
					t.Fatalf("Walk value mismatch at %d", k)
				}
				return true
			})
			if len(keys) != len(ref) {
				t.Fatalf("Walk visited %d keys, want %d", len(keys), len(ref))
			}
			if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
				t.Fatal("Walk not in key order")
			}
		})
	}
}

func TestBTreeDelete(t *testing.T) {
	for _, lib := range libsUnderTest(t) {
		lib := lib
		t.Run(lib.Name(), func(t *testing.T) {
			bt, err := NewBTree(lib)
			if err != nil {
				t.Fatal(err)
			}
			const n = 1000
			for i := uint64(1); i <= n; i++ {
				if err := bt.Insert(i, i*10); err != nil {
					t.Fatal(err)
				}
			}
			// Delete the odd keys.
			for i := uint64(1); i <= n; i += 2 {
				found, err := bt.Delete(i)
				if err != nil {
					t.Fatal(err)
				}
				if !found {
					t.Fatalf("Delete(%d) did not find the key", i)
				}
			}
			for i := uint64(1); i <= n; i++ {
				_, ok := bt.Search(i)
				if i%2 == 1 && ok {
					t.Fatalf("deleted key %d still present", i)
				}
				if i%2 == 0 && !ok {
					t.Fatalf("surviving key %d lost", i)
				}
			}
			if found, _ := bt.Delete(424242); found {
				t.Fatal("deleted an absent key")
			}
		})
	}
}

func TestQuickBTreeMatchesMap(t *testing.T) {
	lib, err := puddleslib.New()
	if err != nil {
		t.Fatal(err)
	}
	defer lib.Close()
	bt, err := NewBTree(lib)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[uint64]uint64)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			k := uint64(op%512) + 1
			switch {
			case op%3 == 0 && len(ref) > 0:
				found, err := bt.Delete(k)
				if err != nil {
					return false
				}
				_, inRef := ref[k]
				if found != inRef {
					return false
				}
				delete(ref, k)
			default:
				v := uint64(op) * 31
				if err := bt.Insert(k, v); err != nil {
					return false
				}
				ref[k] = v
			}
		}
		for k, v := range ref {
			if got, ok := bt.Search(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRawListCodecs(t *testing.T) {
	const n = 1 << 12
	for _, mk := range []func(dev *pmem.Device) PtrCodec{
		func(*pmem.Device) PtrCodec { return NativeCodec{} },
		func(*pmem.Device) PtrCodec { return NewFatCodec(0x100000) },
	} {
		dev := pmem.New()
		codec := mk(dev)
		l := NewRawList(dev, codec, 0x100000, 64<<20)
		l.Build(n)
		want := uint64(n) * (n + 1) / 2
		if got := l.Traverse(); got != want {
			t.Fatalf("%s: Traverse = %d, want %d", codec.Name(), got, want)
		}
	}
}

func TestRawTreeCodecs(t *testing.T) {
	const height = 10
	nodes := uint64(1<<height) - 1
	want := nodes * (nodes + 1) / 2
	for _, mk := range []func() PtrCodec{
		func() PtrCodec { return NativeCodec{} },
		func() PtrCodec { return NewFatCodec(0x100000) },
	} {
		dev := pmem.New()
		codec := mk()
		tr := NewRawTree(dev, codec, 0x100000)
		tr.Build(height)
		if got := tr.TraverseDF(); got != want {
			t.Fatalf("%s: TraverseDF = %d, want %d", codec.Name(), got, want)
		}
	}
}

func TestFatCodecNullAndForeign(t *testing.T) {
	dev := pmem.New()
	c := NewFatCodec(0x1000)
	c.Store(dev, 0x100, 0)
	if c.Load(dev, 0x100) != 0 {
		t.Fatal("null fat pointer round trip failed")
	}
	dev.StoreU64(0x200, 77) // unknown pool id
	dev.StoreU64(0x208, 8)
	if c.Load(dev, 0x200) != 0 {
		t.Fatal("unknown pool id dereferenced")
	}
}
