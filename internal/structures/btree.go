package structures

import (
	"puddles/internal/pmem"
	"puddles/internal/pmlib"
)

// BTree is the order-8 B-tree of paper Fig. 10: up to 7 keys and 8
// children per node, 8-byte keys and values, one transaction per
// mutation.
//
// Node layout (offsets independent of reference width until children):
//
//	0   nkeys u64
//	8   leaf  u64
//	16  keys  [7]u64
//	72  vals  [7]u64
//	128 children [8]Ref
//
// The root object holds a single Ref to the current root node.
type BTree struct {
	lib      pmlib.Lib
	rootAddr pmem.Addr // address of the root Ref
	nodeSize uint32
	rs       uint32
}

// B-tree geometry.
const (
	btOrder   = 8
	btMaxKeys = btOrder - 1

	boNKeys = 0
	boLeaf  = 8
	boKeys  = 16
	boVals  = 72
	boKids  = 128
)

// NewBTree opens (or creates) the tree in lib's root object.
func NewBTree(lib pmlib.Lib) (*BTree, error) {
	rs := lib.RefSize()
	root, err := lib.Root(rs)
	if err != nil {
		return nil, err
	}
	return &BTree{
		lib:      lib,
		rootAddr: lib.Deref(root),
		nodeSize: boKids + btOrder*rs,
		rs:       rs,
	}, nil
}

func (t *BTree) dev() *pmem.Device { return t.lib.Device() }

func (t *BTree) nkeys(n pmem.Addr) int   { return int(t.dev().LoadU64(n + boNKeys)) }
func (t *BTree) isLeaf(n pmem.Addr) bool { return t.dev().LoadU64(n+boLeaf) != 0 }
func (t *BTree) key(n pmem.Addr, i int) uint64 {
	return t.dev().LoadU64(n + boKeys + pmem.Addr(i*8))
}
func (t *BTree) val(n pmem.Addr, i int) uint64 {
	return t.dev().LoadU64(n + boVals + pmem.Addr(i*8))
}
func (t *BTree) childRef(n pmem.Addr, i int) pmlib.Ref {
	return t.lib.LoadRef(n + boKids + pmem.Addr(uint32(i)*t.rs))
}
func (t *BTree) child(n pmem.Addr, i int) pmem.Addr {
	return t.lib.Deref(t.childRef(n, i))
}
func (t *BTree) childSlot(n pmem.Addr, i int) pmem.Addr {
	return n + boKids + pmem.Addr(uint32(i)*t.rs)
}

// Search returns the value for key (read-only pointer chase).
func (t *BTree) Search(key uint64) (uint64, bool) {
	n := t.lib.Deref(t.lib.LoadRef(t.rootAddr))
	for n != 0 {
		nk := t.nkeys(n)
		i := 0
		for i < nk && key > t.key(n, i) {
			i++
		}
		if i < nk && key == t.key(n, i) {
			return t.val(n, i), true
		}
		if t.isLeaf(n) {
			return 0, false
		}
		n = t.child(n, i)
	}
	return 0, false
}

// Insert adds or updates a key in one transaction.
func (t *BTree) Insert(key, val uint64) error {
	return t.lib.Run(func(tx pmlib.Tx) error {
		rootRef := t.lib.LoadRef(t.rootAddr)
		if rootRef.IsNull() {
			leaf, err := t.newNode(tx, true)
			if err != nil {
				return err
			}
			la := t.lib.Deref(leaf)
			if err := t.setKV(tx, la, 0, key, val); err != nil {
				return err
			}
			if err := tx.SetU64(la+boNKeys, 1); err != nil {
				return err
			}
			return tx.SetRef(t.rootAddr, leaf)
		}
		root := t.lib.Deref(rootRef)
		if t.nkeys(root) == btMaxKeys {
			// Split the root: new root with one child, then split down.
			newRootRef, err := t.newNode(tx, false)
			if err != nil {
				return err
			}
			nr := t.lib.Deref(newRootRef)
			if err := tx.SetRef(t.childSlot(nr, 0), rootRef); err != nil {
				return err
			}
			if err := t.splitChild(tx, nr, 0); err != nil {
				return err
			}
			if err := tx.SetRef(t.rootAddr, newRootRef); err != nil {
				return err
			}
			root = nr
		}
		return t.insertNonFull(tx, root, key, val)
	})
}

func (t *BTree) newNode(tx pmlib.Tx, leaf bool) (pmlib.Ref, error) {
	r, err := tx.Alloc(t.nodeSize)
	if err != nil {
		return pmlib.Null, err
	}
	if leaf {
		if err := tx.SetU64(t.lib.Deref(r)+boLeaf, 1); err != nil {
			return pmlib.Null, err
		}
	}
	return r, nil
}

func (t *BTree) setKV(tx pmlib.Tx, n pmem.Addr, i int, key, val uint64) error {
	if err := tx.SetU64(n+boKeys+pmem.Addr(i*8), key); err != nil {
		return err
	}
	return tx.SetU64(n+boVals+pmem.Addr(i*8), val)
}

// splitChild splits the full i-th child of parent (CLRS B-TREE-SPLIT).
func (t *BTree) splitChild(tx pmlib.Tx, parent pmem.Addr, i int) error {
	childRef := t.childRef(parent, i)
	child := t.lib.Deref(childRef)
	leaf := t.isLeaf(child)
	newRef, err := t.newNode(tx, leaf)
	if err != nil {
		return err
	}
	right := t.lib.Deref(newRef)
	const mid = btMaxKeys / 2 // 3: median index
	// Move keys/vals [mid+1, 7) to the new right node.
	for j := mid + 1; j < btMaxKeys; j++ {
		if err := t.setKV(tx, right, j-mid-1, t.key(child, j), t.val(child, j)); err != nil {
			return err
		}
	}
	if !leaf {
		for j := mid + 1; j < btOrder; j++ {
			if err := tx.SetRef(t.childSlot(right, j-mid-1), t.childRef(child, j)); err != nil {
				return err
			}
		}
	}
	if err := tx.SetU64(right+boNKeys, uint64(btMaxKeys-mid-1)); err != nil {
		return err
	}
	if err := tx.SetU64(child+boNKeys, uint64(mid)); err != nil {
		return err
	}
	// Shift the parent's keys and children right of slot i.
	nk := t.nkeys(parent)
	for j := nk - 1; j >= i; j-- {
		if err := t.setKV(tx, parent, j+1, t.key(parent, j), t.val(parent, j)); err != nil {
			return err
		}
	}
	for j := nk; j >= i+1; j-- {
		if err := tx.SetRef(t.childSlot(parent, j+1), t.childRef(parent, j)); err != nil {
			return err
		}
	}
	if err := t.setKV(tx, parent, i, t.key(child, mid), t.val(child, mid)); err != nil {
		return err
	}
	if err := tx.SetRef(t.childSlot(parent, i+1), newRef); err != nil {
		return err
	}
	return tx.SetU64(parent+boNKeys, uint64(nk+1))
}

func (t *BTree) insertNonFull(tx pmlib.Tx, n pmem.Addr, key, val uint64) error {
	for {
		nk := t.nkeys(n)
		i := 0
		for i < nk && key > t.key(n, i) {
			i++
		}
		if i < nk && key == t.key(n, i) { // update in place
			return tx.SetU64(n+boVals+pmem.Addr(i*8), val)
		}
		if t.isLeaf(n) {
			for j := nk - 1; j >= i; j-- {
				if err := t.setKV(tx, n, j+1, t.key(n, j), t.val(n, j)); err != nil {
					return err
				}
			}
			if err := t.setKV(tx, n, i, key, val); err != nil {
				return err
			}
			return tx.SetU64(n+boNKeys, uint64(nk+1))
		}
		if t.nkeys(t.child(n, i)) == btMaxKeys {
			if err := t.splitChild(tx, n, i); err != nil {
				return err
			}
			switch {
			case key > t.key(n, i):
				i++
			case key == t.key(n, i):
				return tx.SetU64(n+boVals+pmem.Addr(i*8), val)
			}
		}
		n = t.child(n, i)
	}
}

// Delete removes a key in one transaction. Internal keys swap with
// their in-order predecessor before leaf removal; underflowed nodes
// are not rebalanced (search correctness is unaffected; see DESIGN.md
// §6 on simplifications).
func (t *BTree) Delete(key uint64) (bool, error) {
	found := false
	err := t.lib.Run(func(tx pmlib.Tx) error {
		n := t.lib.Deref(t.lib.LoadRef(t.rootAddr))
		for n != 0 {
			nk := t.nkeys(n)
			i := 0
			for i < nk && key > t.key(n, i) {
				i++
			}
			if i < nk && key == t.key(n, i) {
				found = true
				if t.isLeaf(n) {
					return t.removeFromLeaf(tx, n, i)
				}
				// Swap with the predecessor (max of left subtree).
				pn, pi := t.maxOf(t.child(n, i))
				if err := t.setKV(tx, n, i, t.key(pn, pi), t.val(pn, pi)); err != nil {
					return err
				}
				return t.removeFromLeaf(tx, pn, pi)
			}
			if t.isLeaf(n) {
				return nil // absent
			}
			n = t.child(n, i)
		}
		return nil
	})
	return found, err
}

// maxOf walks to the rightmost (leaf, index) under n.
func (t *BTree) maxOf(n pmem.Addr) (pmem.Addr, int) {
	for !t.isLeaf(n) {
		n = t.child(n, t.nkeys(n))
	}
	return n, t.nkeys(n) - 1
}

func (t *BTree) removeFromLeaf(tx pmlib.Tx, n pmem.Addr, i int) error {
	nk := t.nkeys(n)
	for j := i; j < nk-1; j++ {
		if err := t.setKV(tx, n, j, t.key(n, j+1), t.val(n, j+1)); err != nil {
			return err
		}
	}
	return tx.SetU64(n+boNKeys, uint64(nk-1))
}

// Walk visits all key/value pairs in ascending key order.
func (t *BTree) Walk(fn func(k, v uint64) bool) {
	t.walk(t.lib.Deref(t.lib.LoadRef(t.rootAddr)), fn)
}

func (t *BTree) walk(n pmem.Addr, fn func(k, v uint64) bool) bool {
	if n == 0 {
		return true
	}
	nk := t.nkeys(n)
	leaf := t.isLeaf(n)
	for i := 0; i < nk; i++ {
		if !leaf && !t.walk(t.child(n, i), fn) {
			return false
		}
		if !fn(t.key(n, i), t.val(n, i)) {
			return false
		}
	}
	if !leaf {
		return t.walk(t.child(n, nk), fn)
	}
	return true
}

// Depth returns the tree height (tests/diagnostics).
func (t *BTree) Depth() int {
	d := 0
	n := t.lib.Deref(t.lib.LoadRef(t.rootAddr))
	for n != 0 {
		d++
		if t.isLeaf(n) {
			break
		}
		n = t.child(n, 0)
	}
	return d
}
