package structures

import (
	"fmt"

	"puddles/internal/core"
	"puddles/internal/pmem"
)

// ShadowMap is a persistent uint64→uint64 hash-trie (fanout 4, two
// key bits per level, low bits first) committed with the shadow
// discipline: every Put/Delete path-copies the touched spine into
// free slots and publishes the new root with one fence + one atomic
// root store. Leaves off the copied spine are structure-shared
// between versions, so an update allocates O(depth) slots.
//
// Node layout (64-byte slots):
//
//	internal: [0] kind  [1..4] child slot addrs
//	leaf:     [0] kind  [1] key  [2] value
type ShadowMap struct {
	s *shadowCore
}

// NewShadowMap allocates an empty map descriptor in pool.
func NewShadowMap(c *core.Client, pool *core.Pool) (*ShadowMap, error) {
	s, err := newShadowCore(c, pool, descMagicMap)
	if err != nil {
		return nil, err
	}
	return &ShadowMap{s: s}, nil
}

// OpenShadowMap rebinds a descriptor after a crash or reopen,
// recomputing the free list from root reachability.
func OpenShadowMap(c *core.Client, pool *core.Pool, desc pmem.Addr) (*ShadowMap, error) {
	s, err := openShadowCore(c, pool, desc, descMagicMap)
	if err != nil {
		return nil, err
	}
	m := &ShadowMap{s: s}
	reach := make(map[pmem.Addr]bool)
	count := 0
	if err := m.mark(pmem.Addr(s.dev.LoadU64(desc+8)), reach, &count, 0); err != nil {
		return nil, err
	}
	s.recoverFree(reach)
	s.count = count
	return m, nil
}

// Desc returns the persistent descriptor address (store it in a pool
// root to find the map again).
func (m *ShadowMap) Desc() pmem.Addr { return m.s.desc }

// Len returns the number of committed keys.
func (m *ShadowMap) Len() int {
	m.s.mu.RLock()
	defer m.s.mu.RUnlock()
	return m.s.count
}

// Sync fences the latest root publish down and recycles limbo slots.
func (m *ShadowMap) Sync() { m.s.sync() }

func nodeKind(dev *pmem.Device, a pmem.Addr) (int, error) {
	w := dev.LoadU64(a)
	if w&^uint64(nodeKindMask) != nodeBrand {
		return 0, fmt.Errorf("%w: slot %#x is not a shadow node", ErrShadowCorrupt, uint64(a))
	}
	return int(w & nodeKindMask), nil
}

func (m *ShadowMap) mark(a pmem.Addr, reach map[pmem.Addr]bool, count *int, shift uint) error {
	if a == 0 {
		return nil
	}
	if reach[a] {
		return nil // structure-shared subtree already visited
	}
	if shift > 62 {
		return fmt.Errorf("%w: trie deeper than the key width", ErrShadowCorrupt)
	}
	k, err := nodeKind(m.s.dev, a)
	if err != nil {
		return err
	}
	reach[a] = true
	switch k {
	case snLeaf:
		*count++
		return nil
	case snInternal:
		for i := 0; i < 4; i++ {
			c := pmem.Addr(m.s.dev.LoadU64(a + 8 + pmem.Addr(8*i)))
			if err := m.mark(c, reach, count, shift+2); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: kind %d in map trie", ErrShadowCorrupt, k)
	}
}

// Get returns the committed value for key.
func (m *ShadowMap) Get(key uint64) (uint64, bool) {
	m.s.mu.RLock()
	defer m.s.mu.RUnlock()
	dev := m.s.dev
	a := pmem.Addr(dev.LoadU64(m.s.desc + 8))
	for shift := uint(0); a != 0; shift += 2 {
		switch dev.LoadU64(a) & nodeKindMask {
		case snLeaf:
			if dev.LoadU64(a+8) == key {
				return dev.LoadU64(a + 16), true
			}
			return 0, false
		default:
			a = pmem.Addr(dev.LoadU64(a + 8 + pmem.Addr(8*((key>>shift)&3))))
		}
	}
	return 0, false
}

// Walk visits every committed pair; fn returning false stops early.
func (m *ShadowMap) Walk(fn func(key, val uint64) bool) {
	m.s.mu.RLock()
	defer m.s.mu.RUnlock()
	m.walk(pmem.Addr(m.s.dev.LoadU64(m.s.desc+8)), fn)
}

func (m *ShadowMap) walk(a pmem.Addr, fn func(key, val uint64) bool) bool {
	if a == 0 {
		return true
	}
	dev := m.s.dev
	if dev.LoadU64(a)&nodeKindMask == snLeaf {
		return fn(dev.LoadU64(a+8), dev.LoadU64(a+16))
	}
	for i := 0; i < 4; i++ {
		if !m.walk(pmem.Addr(dev.LoadU64(a+8+pmem.Addr(8*i))), fn) {
			return false
		}
	}
	return true
}

// Put inserts or replaces key. One shadow commit: path copy, one
// fence, one root store.
func (m *ShadowMap) Put(key, val uint64) error {
	s := m.s
	s.mu.Lock()
	defer s.mu.Unlock()
	var p pend
	inserted := false
	err := s.c.RunShadow(s.pool, func(st *core.ShadowTx) error {
		s.reset(&p)
		inserted = false
		root := pmem.Addr(s.dev.LoadU64(s.desc + 8))
		nr, ins, err := m.putNode(st, &p, root, key, val, 0)
		if err != nil {
			return err
		}
		inserted = ins
		return st.Publish(s.desc+8, uint64(nr))
	})
	if err != nil {
		return err
	}
	delta := 0
	if inserted {
		delta = 1
	}
	s.settle(&p, delta)
	return nil
}

func (m *ShadowMap) putNode(st *core.ShadowTx, p *pend, a pmem.Addr, key, val uint64, shift uint) (pmem.Addr, bool, error) {
	s := m.s
	if a == 0 {
		n, err := s.take(st, p)
		if err != nil {
			return 0, false, err
		}
		writeLeaf(st, n, key, val)
		return n, true, nil
	}
	if s.dev.LoadU64(a)&nodeKindMask == snLeaf {
		old := s.dev.LoadU64(a + 8)
		if old == key {
			n, err := s.take(st, p)
			if err != nil {
				return 0, false, err
			}
			writeLeaf(st, n, key, val)
			p.retired = append(p.retired, a)
			return n, false, nil
		}
		// Split: reuse the existing leaf (structure sharing) under a
		// fresh internal chain down to the first diverging 2-bit slot.
		d := shift
		for (old>>d)&3 == (key>>d)&3 {
			d += 2
		}
		nl, err := s.take(st, p)
		if err != nil {
			return 0, false, err
		}
		writeLeaf(st, nl, key, val)
		cur, err := s.take(st, p)
		if err != nil {
			return 0, false, err
		}
		var kids [4]pmem.Addr
		kids[(old>>d)&3] = a
		kids[(key>>d)&3] = nl
		writeInternal(st, cur, kids)
		for d > shift {
			d -= 2
			up, err := s.take(st, p)
			if err != nil {
				return 0, false, err
			}
			kids = [4]pmem.Addr{}
			kids[(key>>d)&3] = cur
			writeInternal(st, up, kids)
			cur = up
		}
		return cur, true, nil
	}
	idx := (key >> shift) & 3
	child := pmem.Addr(s.dev.LoadU64(a + 8 + pmem.Addr(8*idx)))
	nc, ins, err := m.putNode(st, p, child, key, val, shift+2)
	if err != nil {
		return 0, false, err
	}
	n, err := s.take(st, p)
	if err != nil {
		return 0, false, err
	}
	var kids [4]pmem.Addr
	for i := 0; i < 4; i++ {
		kids[i] = pmem.Addr(s.dev.LoadU64(a + 8 + pmem.Addr(8*i)))
	}
	kids[idx] = nc
	writeInternal(st, n, kids)
	p.retired = append(p.retired, a)
	return n, ins, nil
}

// Delete removes key, reporting whether it was present.
func (m *ShadowMap) Delete(key uint64) (bool, error) {
	s := m.s
	s.mu.Lock()
	defer s.mu.Unlock()
	root := pmem.Addr(s.dev.LoadU64(s.desc + 8))
	if root == 0 {
		return false, nil
	}
	var p pend
	found := false
	err := s.c.RunShadow(s.pool, func(st *core.ShadowTx) error {
		s.reset(&p)
		nr, ok, err := m.delNode(st, &p, root, key, 0)
		if err != nil {
			return err
		}
		found = ok
		if !ok {
			return nil // absent: commit as a no-op, publish nothing
		}
		return st.Publish(s.desc+8, uint64(nr))
	})
	if err != nil {
		return false, err
	}
	if found {
		s.settle(&p, -1)
	}
	return found, nil
}

func (m *ShadowMap) delNode(st *core.ShadowTx, p *pend, a pmem.Addr, key uint64, shift uint) (pmem.Addr, bool, error) {
	s := m.s
	if a == 0 {
		return 0, false, nil
	}
	if s.dev.LoadU64(a)&nodeKindMask == snLeaf {
		if s.dev.LoadU64(a+8) != key {
			return a, false, nil
		}
		p.retired = append(p.retired, a)
		return 0, true, nil
	}
	idx := (key >> shift) & 3
	child := pmem.Addr(s.dev.LoadU64(a + 8 + pmem.Addr(8*idx)))
	nc, ok, err := m.delNode(st, p, child, key, shift+2)
	if err != nil || !ok {
		return a, ok, err
	}
	var kids [4]pmem.Addr
	empty := nc == 0
	for i := 0; i < 4; i++ {
		kids[i] = pmem.Addr(s.dev.LoadU64(a + 8 + pmem.Addr(8*i)))
		if i != int(idx) && kids[i] != 0 {
			empty = false
		}
	}
	kids[idx] = nc
	p.retired = append(p.retired, a)
	if empty {
		return 0, true, nil
	}
	n, err := s.take(st, p)
	if err != nil {
		return 0, false, err
	}
	writeInternal(st, n, kids)
	return n, true, nil
}

// Validate checks the slot census: reachable + free + limbo must
// account for every slot in the extent chain exactly once.
func (m *ShadowMap) Validate() error {
	m.s.mu.RLock()
	defer m.s.mu.RUnlock()
	reach := make(map[pmem.Addr]bool)
	count := 0
	if err := m.mark(pmem.Addr(m.s.dev.LoadU64(m.s.desc+8)), reach, &count, 0); err != nil {
		return err
	}
	if count != m.s.count {
		return fmt.Errorf("%w: volatile count %d, trie holds %d", ErrShadowCorrupt, m.s.count, count)
	}
	return m.s.census(reach)
}

func writeLeaf(st *core.ShadowTx, a pmem.Addr, key, val uint64) {
	st.StoreU64(a, nodeBrand|snLeaf)
	st.StoreU64(a+8, key)
	st.StoreU64(a+16, val)
}

func writeInternal(st *core.ShadowTx, a pmem.Addr, kids [4]pmem.Addr) {
	st.StoreU64(a, nodeBrand|snInternal)
	for i, k := range kids {
		st.StoreU64(a+8+pmem.Addr(8*i), uint64(k))
	}
}
