package structures

import (
	"math/rand"
	"testing"

	"puddles/internal/baselines/puddleslib"
	"puddles/internal/kvstore"
)

func shadowEnv(t *testing.T) *puddleslib.Lib {
	t.Helper()
	pl, err := puddleslib.New()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pl.Close() })
	return pl
}

func TestShadowMapPutGetDelete(t *testing.T) {
	pl := shadowEnv(t)
	m, err := NewShadowMap(pl.Client(), pl.Pool())
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	model := make(map[uint64]uint64, n)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		k := rng.Uint64() % 1000
		v := rng.Uint64()
		if err := m.Put(k, v); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	if m.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(model))
	}
	for k, v := range model {
		got, ok := m.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	if _, ok := m.Get(1 << 60); ok {
		t.Fatal("Get on absent key succeeded")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Delete half, including some absent keys.
	for k := range model {
		if k%2 == 0 {
			ok, err := m.Delete(k)
			if err != nil || !ok {
				t.Fatalf("Delete(%d) = %v,%v", k, ok, err)
			}
			delete(model, k)
		}
	}
	if ok, err := m.Delete(1 << 60); err != nil || ok {
		t.Fatalf("Delete absent = %v,%v", ok, err)
	}
	if m.Len() != len(model) {
		t.Fatalf("after delete Len = %d, want %d", m.Len(), len(model))
	}
	seen := map[uint64]uint64{}
	m.Walk(func(k, v uint64) bool { seen[k] = v; return true })
	if len(seen) != len(model) {
		t.Fatalf("Walk saw %d, want %d", len(seen), len(model))
	}
	for k, v := range model {
		if seen[k] != v {
			t.Fatalf("Walk[%d] = %d, want %d", k, seen[k], v)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShadowMapReopen(t *testing.T) {
	pl := shadowEnv(t)
	m, err := NewShadowMap(pl.Client(), pl.Pool())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		if err := m.Put(i, i*3+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 300; i += 3 {
		if _, err := m.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	m.Sync()
	m2, err := OpenShadowMap(pl.Client(), pl.Pool(), m.Desc())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != m.Len() {
		t.Fatalf("reopened Len = %d, want %d", m2.Len(), m.Len())
	}
	for i := uint64(0); i < 300; i++ {
		want, wantOK := m.Get(i)
		got, ok := m2.Get(i)
		if ok != wantOK || got != want {
			t.Fatalf("reopened Get(%d) = %d,%v want %d,%v", i, got, ok, want, wantOK)
		}
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
	// The reopened handle keeps working (fresh free list is sound).
	for i := uint64(1000); i < 1100; i++ {
		if err := m2.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShadowQueueFIFO(t *testing.T) {
	pl := shadowEnv(t)
	q, err := NewShadowQueue(pl.Client(), pl.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := q.Dequeue(); err != nil || ok {
		t.Fatalf("Dequeue empty = %v,%v", ok, err)
	}
	for i := uint64(1); i <= 500; i++ {
		if err := q.Enqueue(i * 7); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 500 {
		t.Fatalf("Len = %d", q.Len())
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 200; i++ {
		v, ok, err := q.Dequeue()
		if err != nil || !ok || v != i*7 {
			t.Fatalf("Dequeue = %d,%v,%v want %d", v, ok, err, i*7)
		}
	}
	// Interleave to exercise desc churn across the wrap.
	for i := uint64(501); i <= 600; i++ {
		if err := q.Enqueue(i * 7); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := q.Dequeue(); err != nil || !ok {
			t.Fatalf("Dequeue = %v,%v", ok, err)
		}
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	q.Sync()
	q2, err := OpenShadowQueue(pl.Client(), pl.Pool(), q.Desc())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q2.Values(), q.Values(); len(got) != len(want) {
		t.Fatalf("reopened Values len %d, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Values[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
	if err := q2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drain fully through the reopened handle.
	for q2.Len() > 0 {
		if _, ok, err := q2.Dequeue(); err != nil || !ok {
			t.Fatalf("drain = %v,%v", ok, err)
		}
	}
	if err := q2.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShadowFencesPerOp is the fence-accounting regression: a shadow
// map update must average ≤ 2 fences/op (one shadow barrier, plus
// amortized extent carves) while the undo-log kvstore pays ≥ 3
// (per-append log fence, commit stage 1, commit-point persist, log
// reset persist).
func TestShadowFencesPerOp(t *testing.T) {
	const n = 512

	pl := shadowEnv(t)
	m, err := NewShadowMap(pl.Client(), pl.Pool())
	if err != nil {
		t.Fatal(err)
	}
	dev := pl.Device()
	base := dev.Stats().Fences
	for i := uint64(0); i < n; i++ {
		if err := m.Put(i, i^0xdead); err != nil {
			t.Fatal(err)
		}
	}
	shadowFences := dev.Stats().Fences - base
	if shadowFences > 2*n {
		t.Fatalf("shadow map: %d fences for %d puts (> 2/op)", shadowFences, n)
	}

	pl2 := shadowEnv(t)
	kv, err := kvstore.New(pl2, kvstore.Options{Buckets: 256, ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	dev2 := pl2.Device()
	base2 := dev2.Stats().Fences
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := uint64(0); i < n; i++ {
		if err := kv.Put(i, val); err != nil {
			t.Fatal(err)
		}
	}
	undoFences := dev2.Stats().Fences - base2
	if undoFences < 3*n {
		t.Fatalf("undo kvstore: %d fences for %d puts (< 3/op — accounting drifted?)", undoFences, n)
	}
	if shadowFences >= undoFences {
		t.Fatalf("shadow (%d) not cheaper than undo (%d)", shadowFences, undoFences)
	}
	t.Logf("fences/op: shadow %.2f, undo %.2f", float64(shadowFences)/n, float64(undoFences)/n)
}
