package structures

import (
	"testing"

	"puddles/internal/baselines/puddleslib"
	"puddles/internal/core"
	"puddles/internal/daemon"
	"puddles/internal/pmem"
	"puddles/internal/pmlib"
)

// Crash-consistency tests for the evaluation data structures: inject a
// crash at every stride-th persistence event while mutating, reboot the
// daemon (system recovery), and verify structural invariants. This is
// the workload-level counterpart of internal/chaos.

// chaosPuddles builds a Puddles pmlib stack over a chaos device.
func chaosPuddles(t *testing.T, seed int64) (pmlib.Lib, *pmem.Device) {
	t.Helper()
	dev := pmem.NewChaos(seed)
	d, err := daemon.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	c := core.ConnectLocal(d)
	pool, err := c.CreatePool("bench", 0)
	if err != nil {
		t.Fatal(err)
	}
	lib := puddleslib.Wrap(c, pool)
	return lib, dev
}

func TestListCrashConsistency(t *testing.T) {
	for off := int64(50); off < 4000; off += 331 {
		lib, dev := chaosPuddles(t, off)
		l, err := NewList(lib)
		if err != nil {
			t.Fatal(err)
		}
		// A few committed appends first.
		for i := uint64(1); i <= 3; i++ {
			if err := l.Append(i); err != nil {
				t.Fatal(err)
			}
		}
		crashesBefore := dev.Stats().Crashes
		dev.CrashAtEvent(dev.Events() + off)
		crashed := false
		var appendErr error
		func() {
			defer func() {
				if r := recover(); r != nil {
					if !pmem.IsCrash(r) {
						panic(r)
					}
					crashed = true
				}
			}()
			for i := uint64(4); i <= 20; i++ {
				if appendErr = l.Append(i); appendErr != nil {
					return
				}
			}
		}()
		crashed = crashed || dev.Stats().Crashes > crashesBefore
		if !crashed {
			if appendErr != nil {
				t.Fatalf("offset %d: append: %v", off, appendErr)
			}
			break
		}
		// Reboot: recovery runs before any access.
		d2, err := daemon.New(dev)
		if err != nil {
			t.Fatalf("offset %d: reboot: %v", off, err)
		}
		c2 := core.ConnectLocal(d2)
		pool2, err := c2.OpenPool("bench")
		if err != nil {
			t.Fatalf("offset %d: reopen: %v", off, err)
		}
		l2, err := NewList(puddleslib.Wrap(c2, pool2))
		if err != nil {
			t.Fatalf("offset %d: relist: %v", off, err)
		}
		// Invariant: the list is a clean prefix 1..k for some k >= 3.
		vals := l2.Values()
		if len(vals) < 3 {
			t.Fatalf("offset %d: committed appends lost (%v)", off, vals)
		}
		for i, v := range vals {
			if v != uint64(i+1) {
				t.Fatalf("offset %d: list not a prefix at %d: %v", off, i, vals)
			}
		}
		c2.Close()
	}
}

func TestBTreeCrashConsistency(t *testing.T) {
	for off := int64(100); off < 6000; off += 701 {
		lib, dev := chaosPuddles(t, off)
		bt, err := NewBTree(lib)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 5; i++ {
			if err := bt.Insert(i*7, i); err != nil {
				t.Fatal(err)
			}
		}
		crashesBefore := dev.Stats().Crashes
		dev.CrashAtEvent(dev.Events() + off)
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if !pmem.IsCrash(r) {
						panic(r)
					}
					crashed = true
				}
			}()
			for i := uint64(6); i <= 60; i++ {
				if err := bt.Insert(i*7, i); err != nil {
					return
				}
			}
		}()
		crashed = crashed || dev.Stats().Crashes > crashesBefore
		if !crashed {
			break
		}
		d2, err := daemon.New(dev)
		if err != nil {
			t.Fatalf("offset %d: reboot: %v", off, err)
		}
		c2 := core.ConnectLocal(d2)
		pool2, err := c2.OpenPool("bench")
		if err != nil {
			t.Fatalf("offset %d: reopen: %v", off, err)
		}
		bt2, err := NewBTree(puddleslib.Wrap(c2, pool2))
		if err != nil {
			t.Fatal(err)
		}
		// Invariants: committed keys present with right values, walk is
		// sorted and acyclic, and every present key is one we inserted.
		for i := uint64(1); i <= 5; i++ {
			v, ok := bt2.Search(i * 7)
			if !ok || v != i {
				t.Fatalf("offset %d: committed key %d lost (ok=%v v=%d)", off, i*7, ok, v)
			}
		}
		var last uint64
		n := 0
		bt2.Walk(func(k, v uint64) bool {
			if n > 0 && k <= last {
				t.Fatalf("offset %d: walk out of order: %d after %d", off, k, last)
			}
			if k%7 != 0 || v != k/7 {
				t.Fatalf("offset %d: foreign or torn entry %d=%d", off, k, v)
			}
			last = k
			n++
			return n < 1000
		})
		if n < 5 {
			t.Fatalf("offset %d: walk saw %d keys", off, n)
		}
		c2.Close()
	}
}
