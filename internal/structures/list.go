// Package structures implements the persistent data structures the
// paper evaluates — a singly linked list (Fig. 9), an order-8 B-tree
// (Fig. 10), and the raw native-vs-fat microbenchmark structures of
// Fig. 1 — each written once against the pmlib interface so every
// library runs identical code.
package structures

import (
	"errors"

	"puddles/internal/pmem"
	"puddles/internal/pmlib"
)

// List is a persistent singly linked list with head/tail in the root
// object (the paper's Fig. 8 structure).
//
// Node layout: value u64 | next Ref. Root layout: head Ref | tail Ref.
type List struct {
	lib      pmlib.Lib
	rootAddr pmem.Addr
	nodeSize uint32
	offNext  uint32 // = 8
	offTail  uint32 // root: tail ref offset = RefSize
}

// ErrEmpty reports removal from an empty list.
var ErrEmpty = errors.New("structures: list is empty")

// NewList opens (or creates) the list in lib's root object.
func NewList(lib pmlib.Lib) (*List, error) {
	rs := lib.RefSize()
	root, err := lib.Root(2 * rs)
	if err != nil {
		return nil, err
	}
	return &List{
		lib:      lib,
		rootAddr: lib.Deref(root),
		nodeSize: 8 + rs,
		offNext:  8,
		offTail:  rs,
	}, nil
}

func (l *List) head() pmlib.Ref { return l.lib.LoadRef(l.rootAddr) }
func (l *List) tail() pmlib.Ref { return l.lib.LoadRef(l.rootAddr + pmem.Addr(l.offTail)) }

// Append adds a node at the tail in one transaction (paper Fig. 4).
func (l *List) Append(v uint64) error {
	return l.lib.Run(func(tx pmlib.Tx) error {
		n, err := tx.Alloc(l.nodeSize)
		if err != nil {
			return err
		}
		na := l.lib.Deref(n)
		if err := tx.SetU64(na, v); err != nil {
			return err
		}
		tail := l.tail()
		if tail.IsNull() {
			if err := tx.SetRef(l.rootAddr, n); err != nil { // head
				return err
			}
		} else if err := tx.SetRef(l.lib.Deref(tail)+pmem.Addr(l.offNext), n); err != nil {
			return err
		}
		return tx.SetRef(l.rootAddr+pmem.Addr(l.offTail), n)
	})
}

// PopHead removes the first node and returns its value. (The paper's
// delete benchmark removes one node per transaction; a singly linked
// list gives O(1) removal only at the head.)
func (l *List) PopHead() (uint64, error) {
	var out uint64
	err := l.lib.Run(func(tx pmlib.Tx) error {
		head := l.head()
		if head.IsNull() {
			return ErrEmpty
		}
		ha := l.lib.Deref(head)
		out = l.lib.Device().LoadU64(ha)
		next := l.lib.LoadRef(ha + pmem.Addr(l.offNext))
		if err := tx.SetRef(l.rootAddr, next); err != nil {
			return err
		}
		if next.IsNull() {
			if err := tx.SetRef(l.rootAddr+pmem.Addr(l.offTail), pmlib.Null); err != nil {
				return err
			}
		}
		return tx.Free(head)
	})
	return out, err
}

// Sum traverses the whole list adding values — the pure pointer-chase
// read benchmark where native pointers win (paper Fig. 9).
func (l *List) Sum() uint64 {
	lib := l.lib
	var sum uint64
	for p := lib.Deref(l.head()); p != 0; p = lib.Deref(lib.LoadRef(p + pmem.Addr(l.offNext))) {
		sum += lib.Device().LoadU64(p)
	}
	return sum
}

// Len counts the nodes.
func (l *List) Len() int {
	lib := l.lib
	n := 0
	for p := lib.Deref(l.head()); p != 0; p = lib.Deref(lib.LoadRef(p + pmem.Addr(l.offNext))) {
		n++
	}
	return n
}

// Values returns the list contents (tests).
func (l *List) Values() []uint64 {
	lib := l.lib
	var out []uint64
	for p := lib.Deref(l.head()); p != 0; p = lib.Deref(lib.LoadRef(p + pmem.Addr(l.offNext))) {
		out = append(out, lib.Device().LoadU64(p))
	}
	return out
}
