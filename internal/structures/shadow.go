// Shadow (MOD-style) persistent structures: a hash-trie map and a
// FIFO queue whose mutations build a functional copy of the touched
// path in unreachable memory and publish it with one atomically
// written root pointer. A carve-free update costs exactly ONE fence
// (the shadow flush barrier in core.ShadowTx.Commit) against the
// undo-log discipline's three or more.
//
// Memory management: nodes are 64-byte slots carved from 64 KiB
// extents allocated through the wrapped undo transaction, so extent
// carves keep leases/wait-die arbitration and crash atomicity. No
// free list is persisted — recovery recomputes it as
// (every slot in the extent chain) − (slots reachable from the root).
// Slots retired by an update are quarantined in a one-op limbo list
// and become reusable only after the NEXT commit's fence, which is
// what makes the not-yet-fenced root publish safe: any root a crash
// can resurrect still reaches only slots that no later op overwrote.
package structures

import (
	"errors"
	"fmt"
	"sync"

	"puddles/internal/core"
	"puddles/internal/pmem"
	"puddles/internal/ptypes"
)

const (
	shadowNodeSize   = 64
	shadowExtentSize = 64 << 10
	shadowExtentHdr  = 64
	shadowNodesPer   = (shadowExtentSize - shadowExtentHdr) / shadowNodeSize

	descMagicMap   = 0x5348444d41503031 // "SHDMAP01"
	descMagicQueue = 0x5348445155453031 // "SHDQUE01"
	extentMagic    = 0x5348444558543031 // "SHDEXT01"

	// Node kind words. The high bits brand the slot so recovery can
	// detect a walk into garbage.
	nodeKindMask = 0xff
	nodeBrand    = 0x534e4f4445 << 16 // "SNODE"
	snInternal   = 1
	snLeaf       = 2
	snQDesc      = 3
	snQNode      = 4
)

// ErrShadowCorrupt reports a structural invariant violation found
// while opening or validating a shadow structure.
var ErrShadowCorrupt = errors.New("structures: shadow structure corrupt")

// shadowCore is the volatile state shared by the map and the queue:
// the persistent descriptor plus the recomputable slot bookkeeping.
type shadowCore struct {
	c    *core.Client
	pool *core.Pool
	dev  *pmem.Device
	desc pmem.Addr

	descTI ptypes.TypeID
	extTI  ptypes.TypeID

	mu      sync.RWMutex
	extents []pmem.Addr
	free    []pmem.Addr // reusable slots: unreachable AND durably so
	limbo   []pmem.Addr // retired by the latest op; freed after next fence
	count   int
}

// pend tracks one mutation attempt so a wait-die retry can rewind the
// volatile bookkeeping without touching the committed structure.
type pend struct {
	avail   []pmem.Addr // alias of core.free; consumed from the tail
	carved  []pmem.Addr // slots from a freshly carved extent
	retired []pmem.Addr
	newExt  pmem.Addr
}

func (s *shadowCore) reset(p *pend) {
	p.avail = s.free
	p.carved = nil
	p.retired = nil
	p.newExt = 0
}

// take hands out an unreachable slot, carving a fresh extent through
// the wrapped undo transaction when the pool runs dry.
func (s *shadowCore) take(st *core.ShadowTx, p *pend) (pmem.Addr, error) {
	if n := len(p.avail); n > 0 {
		a := p.avail[n-1]
		p.avail = p.avail[:n-1]
		return a, nil
	}
	if n := len(p.carved); n > 0 {
		a := p.carved[n-1]
		p.carved = p.carved[:n-1]
		return a, nil
	}
	ext, err := st.Alloc(s.extTI, shadowExtentSize)
	if err != nil {
		return 0, err
	}
	// The extent payload is registered fresh by the allocator, so the
	// header writes ride the transaction's stage-1 flush. The chain
	// link lives in committed memory and must be undo-logged.
	st.StoreU64(ext, extentMagic)
	st.StoreU64(ext+8, s.dev.LoadU64(s.desc+16))
	if err := st.Tx().SetU64(s.desc+16, uint64(ext)); err != nil {
		return 0, err
	}
	p.newExt = ext
	for i := shadowNodesPer - 1; i >= 0; i-- {
		p.carved = append(p.carved, ext+shadowExtentHdr+pmem.Addr(i*shadowNodeSize))
	}
	a := p.carved[len(p.carved)-1]
	p.carved = p.carved[:len(p.carved)-1]
	return a, nil
}

// settle applies a successful attempt: consumed slots leave the free
// list, the previous op's limbo (now durably unreachable — this
// commit's fence hardened the publish that orphaned it) is recycled,
// and this op's retirees take its place.
func (s *shadowCore) settle(p *pend, delta int) {
	s.free = p.avail
	if p.newExt != 0 {
		s.extents = append(s.extents, p.newExt)
	}
	s.free = append(s.free, p.carved...)
	s.free = append(s.free, s.limbo...)
	s.limbo = p.retired
	s.count += delta
}

// Sync fences the device so the latest root publish is durable, then
// recycles the limbo slots it was protecting.
func (s *shadowCore) sync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dev.Fence()
	s.free = append(s.free, s.limbo...)
	s.limbo = nil
}

// --- descriptor management -------------------------------------------------

// bindShadowCore registers the (idempotent) shadow layouts with the
// daemon and prepares an empty volatile core.
func bindShadowCore(c *core.Client, pool *core.Pool) (*shadowCore, error) {
	descInfo, err := c.RegisterType("shadow.desc", shadowNodeSize, nil)
	if err != nil {
		return nil, err
	}
	extInfo, err := c.RegisterType("shadow.extent", shadowExtentSize, nil)
	if err != nil {
		return nil, err
	}
	return &shadowCore{
		c:      c,
		pool:   pool,
		dev:    c.Device(),
		descTI: descInfo.ID,
		extTI:  extInfo.ID,
	}, nil
}

func newShadowCore(c *core.Client, pool *core.Pool, magic uint64) (*shadowCore, error) {
	s, err := bindShadowCore(c, pool)
	if err != nil {
		return nil, err
	}
	desc, err := pool.Malloc(s.descTI, shadowNodeSize)
	if err != nil {
		return nil, err
	}
	dev := c.Device()
	dev.StoreU64(desc, magic)
	dev.Persist(desc, 8)
	s.desc = desc
	return s, nil
}

func openShadowCore(c *core.Client, pool *core.Pool, desc pmem.Addr, magic uint64) (*shadowCore, error) {
	s, err := bindShadowCore(c, pool)
	if err != nil {
		return nil, err
	}
	dev := c.Device()
	if dev.LoadU64(desc) != magic {
		return nil, fmt.Errorf("%w: bad descriptor magic at %#x", ErrShadowCorrupt, uint64(desc))
	}
	s.desc = desc
	for ext := pmem.Addr(dev.LoadU64(desc + 16)); ext != 0; ext = pmem.Addr(dev.LoadU64(ext + 8)) {
		if dev.LoadU64(ext) != extentMagic {
			return nil, fmt.Errorf("%w: bad extent magic at %#x", ErrShadowCorrupt, uint64(ext))
		}
		s.extents = append(s.extents, ext)
	}
	return s, nil
}

// recoverFree rebuilds the volatile free list as universe − reachable.
func (s *shadowCore) recoverFree(reachable map[pmem.Addr]bool) {
	for _, ext := range s.extents {
		for i := 0; i < shadowNodesPer; i++ {
			a := ext + shadowExtentHdr + pmem.Addr(i*shadowNodeSize)
			if !reachable[a] {
				s.free = append(s.free, a)
			}
		}
	}
}

// census checks reachable + free + limbo == every slot ever carved.
func (s *shadowCore) census(reachable map[pmem.Addr]bool) error {
	total := len(s.extents) * shadowNodesPer
	seen := make(map[pmem.Addr]bool, total)
	for a := range reachable {
		seen[a] = true
	}
	for _, a := range s.free {
		if seen[a] {
			return fmt.Errorf("%w: slot %#x both reachable/free twice", ErrShadowCorrupt, uint64(a))
		}
		seen[a] = true
	}
	for _, a := range s.limbo {
		if seen[a] {
			return fmt.Errorf("%w: limbo slot %#x double-booked", ErrShadowCorrupt, uint64(a))
		}
		seen[a] = true
	}
	if len(seen) != total {
		return fmt.Errorf("%w: census %d slots, extents carry %d", ErrShadowCorrupt, len(seen), total)
	}
	for _, ext := range s.extents {
		for i := 0; i < shadowNodesPer; i++ {
			if !seen[ext+shadowExtentHdr+pmem.Addr(i*shadowNodeSize)] {
				return fmt.Errorf("%w: slot leaked from extent %#x", ErrShadowCorrupt, uint64(ext))
			}
		}
	}
	return nil
}
