module puddles

go 1.21
