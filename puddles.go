// Package puddles is a Go implementation of Puddles, the persistent
// memory programming system of Mahar et al., "Puddles: Application-
// Independent Recovery and Location-Independent Data for Persistent
// Memory" (EuroSys 2024).
//
// Puddles provides three properties no prior PM library combines:
//
//   - Application-independent recovery: crash-consistency logs are
//     registered with a privileged daemon (Puddled) which replays them
//     after a dirty shutdown, before any application maps the data —
//     recovery is a property of the stored data, not of the program
//     that wrote it.
//
//   - Native pointers: persistent data stores plain 8-byte virtual
//     addresses, readable by non-PM-aware code, with none of the
//     translation cost or cache bloat of fat pointers.
//
//   - Relocatability: data is divided into puddles inside a machine-
//     wide global persistent address space; pointer maps registered
//     per type let the system find and rewrite every pointer, so pools
//     can be cloned, exported, shipped between machines and imported
//     with on-demand incremental relocation.
//
// Persistent memory itself is simulated (see DESIGN.md §2): the
// Device type models a byte-addressable PM with explicit cacheline
// flush/fence semantics and genuine crash injection.
//
// # Quick start
//
//	sys, _ := puddles.NewSystem()
//	defer sys.Shutdown()
//	client := sys.Connect()
//
//	type Node struct {
//		Value uint64
//		Next  puddles.Ptr
//	}
//	nodeT, _ := client.RegisterLayout("Node", Node{})
//
//	pool, _ := client.CreatePool("mydata", 0o600)
//	root, _ := pool.CreateRoot(nodeT.ID, 16)
//
//	client.Run(pool, func(tx *puddles.Tx) error {
//		return tx.SetU64(root, 42) // undo-logged, failure-atomic
//	})
package puddles

import (
	"puddles/internal/core"
	"puddles/internal/daemon"
	"puddles/internal/pmem"
	"puddles/internal/proto"
	"puddles/internal/ptypes"
	"puddles/internal/puddle"
)

// Core types, re-exported from the implementation packages so that
// applications depend only on this module root.
type (
	// Addr is an address in the simulated persistent memory space.
	Addr = pmem.Addr
	// Device is the simulated persistent memory device.
	Device = pmem.Device
	// Ptr marks a persistent pointer field in a Go struct layout; use
	// it with Client.RegisterLayout to derive pointer maps.
	Ptr = ptypes.Ptr
	// TypeID identifies a registered persistent type.
	TypeID = ptypes.TypeID
	// TypeInfo is a registered persistent type's layout.
	TypeInfo = ptypes.TypeInfo
	// PtrField is one pointer-map entry.
	PtrField = ptypes.PtrField
	// Client is a Libpuddles instance (one application).
	Client = core.Client
	// Pool is a named collection of puddles with a root object.
	Pool = core.Pool
	// Tx is a failure-atomic transaction (Libtx).
	Tx = core.Tx
	// ImportStats describes relocation work done by an import.
	ImportStats = core.ImportStats
	// Daemon is a Puddled instance.
	Daemon = daemon.Daemon
	// Stats are daemon counters.
	Stats = proto.Stats
)

// Re-exported errors.
var (
	ErrReadOnly = core.ErrReadOnly
	ErrNoRoot   = core.ErrNoRoot
	ErrTxFailed = core.ErrTxFailed
)

// DefaultPuddleSize is the default puddle size (2 MiB, paper §4.3).
const DefaultPuddleSize = puddle.DefaultSize

// IDOf derives the stable type ID for a type name.
func IDOf(name string) TypeID { return ptypes.IDOf(name) }

// System is one booted machine: a device plus its Puddled daemon.
type System struct {
	dev       *pmem.Device
	d         *daemon.Daemon
	imagePath string
}

// NewSystem boots a machine on a fresh in-memory device.
func NewSystem() (*System, error) {
	return bootOn(pmem.New(), "")
}

// NewChaosSystem boots a machine on a chaos-mode device (volatile
// cachelines, crash injection) for crash-consistency experiments.
func NewChaosSystem(seed int64) (*System, error) {
	return bootOn(pmem.NewChaos(seed), "")
}

// OpenSystemFile boots a machine whose device persists in an image
// file (the DAX-filesystem stand-in): existing state is restored —
// including any pending recovery — and Shutdown saves it back.
func OpenSystemFile(path string) (*System, error) {
	dev := pmem.New()
	if err := dev.RestoreFile(path); err != nil {
		return nil, err
	}
	return bootOn(dev, path)
}

// BootOnDevice boots a daemon on an existing device (advanced use:
// crash experiments that reboot the same device repeatedly).
func BootOnDevice(dev *pmem.Device) (*System, error) {
	return bootOn(dev, "")
}

func bootOn(dev *pmem.Device, imagePath string) (*System, error) {
	d, err := daemon.New(dev)
	if err != nil {
		return nil, err
	}
	return &System{dev: dev, d: d, imagePath: imagePath}, nil
}

// Connect returns a new client (one application) attached to the
// system's daemon over an in-process connection.
func (s *System) Connect() *Client {
	return core.ConnectLocal(s.d)
}

// Device exposes the underlying simulated PM device.
func (s *System) Device() *Device { return s.dev }

// Daemon exposes the underlying Puddled instance.
func (s *System) Daemon() *Daemon { return s.d }

// Stats returns daemon counters.
func (s *System) Stats() Stats { return s.d.Stats() }

// Shutdown cleanly stops the daemon (marking the device cleanly
// closed) and, for file-backed systems, saves the device image.
func (s *System) Shutdown() error {
	s.d.Shutdown()
	if s.imagePath != "" {
		return s.dev.SaveFile(s.imagePath)
	}
	return nil
}

// Crash simulates a power failure WITHOUT a clean shutdown: volatile
// lines resolve randomly (chaos devices), and for file-backed systems
// the surviving bytes are written out. The next OpenSystemFile /
// BootOnDevice runs application-independent recovery.
func (s *System) Crash() error {
	s.dev.CrashNow()
	if s.imagePath != "" {
		return s.dev.SaveFile(s.imagePath)
	}
	return nil
}
