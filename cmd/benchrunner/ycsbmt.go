package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"puddles/internal/baselines/puddleslib"
	"puddles/internal/kvstore"
	"puddles/internal/ycsb"
)

// ycsbmt: multi-worker YCSB over one latched kvstore on one Puddles
// client — the scaling proof for the sharded client/pool/heap lock
// hierarchy. Beyond the printed table, the run is written to a JSON
// artifact (-json, default BENCH_2.json) so CI and later PRs can diff
// single- vs multi-worker throughput.

type ycsbmtPoint struct {
	Workload  string  `json:"workload"`
	Workers   int     `json:"workers"`
	Ops       uint64  `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup_vs_1_worker"`
}

type ycsbmtReport struct {
	Benchmark    string        `json:"benchmark"`
	Records      uint64        `json:"records"`
	FenceLatency string        `json:"fence_latency"`
	LatchStripes int           `json:"latch_stripes"`
	Results      []ycsbmtPoint `json:"results"`
}

func runYCSBMT() error {
	const (
		records      = 8192
		stripes      = 512
		fenceLatency = 6 * time.Microsecond
	)
	opsPerWorkerBase := scaled(400000) // paper-scale op counts, -scale adjusted
	report := ycsbmtReport{
		Benchmark:    "ycsb_concurrent",
		Records:      records,
		FenceLatency: fenceLatency.String(),
		LatchStripes: stripes,
	}
	header := []string{"workload", "workers", "ops", "time", "ops/s", "speedup"}
	var rows [][]string
	for _, wname := range []string{"A", "G"} {
		w, err := ycsb.WorkloadByName(wname)
		if err != nil {
			return err
		}
		var base float64
		for _, workers := range []int{1, 2, 4, 8} {
			lib, err := puddleslib.New()
			if err != nil {
				return err
			}
			s, err := kvstore.New(lib, kvstore.Options{Buckets: 1 << 13, ValueSize: 100, LatchStripes: stripes})
			if err != nil {
				lib.Close()
				return err
			}
			value := make([]byte, 100)
			for _, k := range ycsb.LoadKeys(records) {
				if err := s.Put(k, value); err != nil {
					lib.Close()
					return err
				}
			}
			lib.Device().SetFenceLatency(fenceLatency)
			res, err := ycsb.RunConcurrent(s, w, records, ycsb.ConcurrentOptions{
				Workers:      workers,
				OpsPerWorker: opsPerWorkerBase / workers,
				ValueSize:    100,
				Seed:         42,
			})
			lib.Close()
			if err != nil {
				return err
			}
			ops := res.OpsPerSec()
			if workers == 1 {
				base = ops
			}
			speedup := 0.0
			if base > 0 {
				speedup = ops / base
			}
			report.Results = append(report.Results, ycsbmtPoint{
				Workload: wname, Workers: workers, Ops: res.Ops,
				Seconds: res.Duration.Seconds(), OpsPerSec: ops, Speedup: speedup,
			})
			rows = append(rows, []string{
				wname, fmt.Sprint(workers), fmt.Sprint(res.Ops),
				res.Duration.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", ops), fmt.Sprintf("%.2fx", speedup),
			})
		}
	}
	table(header, rows)
	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *jsonOut)
	return nil
}
