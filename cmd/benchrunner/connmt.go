package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"puddles/internal/chaos"
	"puddles/internal/daemon"
	"puddles/internal/pmem"
	"puddles/internal/proto"
)

// connmt: multi-tenant transport scale-out over real TCP sockets. The
// sweep holds 64 → 4096 (-connmax) concurrent handshaken connections
// against one daemon and drives a fixed per-connection op count
// through each, reporting connect/handshake setup time, steady-state
// request throughput, and the accept-loop health counters — the
// acceptance bar is a completed sweep with zero accept-loop deaths.
// A kill/restart chaos pass (the same harness the -race CI step runs)
// rides along: every acknowledged op must survive every dirty daemon
// restart and every client must end the run reconnected. Results land
// in -connmtjson (default BENCH_8.json).

type connmtPoint struct {
	Conns            int     `json:"conns"`
	Ops              uint64  `json:"ops"`
	ConnectSeconds   float64 `json:"connect_seconds"`
	ConnsPerSec      float64 `json:"conns_per_sec"`
	Seconds          float64 `json:"seconds"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	ActiveConns      int     `json:"active_conns"`
	ActiveSessions   int     `json:"active_sessions"`
	AcceptErrors     uint64  `json:"accept_errors"`
	HandshakeRejects uint64  `json:"handshake_rejects"`
}

type connmtChaos struct {
	Clients    int    `json:"clients"`
	Restarts   int    `json:"restarts"`
	Acked      int    `json:"acked_ops"`
	Unknown    int    `json:"unknown_outcome_ops"`
	Reconnects uint64 `json:"reconnects"`
	Resumes    uint64 `json:"session_resumes"`
}

type connmtReport struct {
	Benchmark        string        `json:"benchmark"`
	Scale            float64       `json:"scale"`
	MaxConns         int           `json:"max_conns"`
	OpsPerConn       int           `json:"ops_per_conn"`
	BufBytes         int           `json:"conn_buf_bytes"`
	AcceptLoopDeaths int           `json:"accept_loop_deaths"`
	Points           []connmtPoint `json:"points"`
	Chaos            *connmtChaos  `json:"chaos,omitempty"`
}

// raiseFDLimit lifts the soft RLIMIT_NOFILE to the hard cap: a
// 4096-connection sweep holds ~8k descriptors in one process (both
// socket ends live here).
func raiseFDLimit() {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
}

func runConnMT() error {
	const bufBytes = 8 << 10 // 256KiB defaults would cost GBs at 4096 conns
	raiseFDLimit()
	opsPerConn := scaled(200)
	report := connmtReport{
		Benchmark:  "conn_scaling",
		Scale:      *scale,
		MaxConns:   *connMax,
		OpsPerConn: opsPerConn,
		BufBytes:   bufBytes,
	}
	header := []string{"conns", "connect", "conns/s", "ops", "ops/s", "accept-errs", "hs-rejects"}
	var rows [][]string
	for _, n := range []int{64, 256, 1024, 4096} {
		if n > *connMax {
			break
		}
		pt, err := connmtCell(n, opsPerConn, bufBytes, &report.AcceptLoopDeaths)
		if err != nil {
			return fmt.Errorf("connmt %d conns: %w", n, err)
		}
		report.Points = append(report.Points, pt)
		rows = append(rows, []string{
			fmt.Sprint(pt.Conns),
			fmt.Sprintf("%.3fs", pt.ConnectSeconds),
			fmt.Sprintf("%.0f", pt.ConnsPerSec),
			fmt.Sprint(pt.Ops),
			fmt.Sprintf("%.0f", pt.OpsPerSec),
			fmt.Sprint(pt.AcceptErrors),
			fmt.Sprint(pt.HandshakeRejects),
		})
	}
	table(header, rows)
	if report.AcceptLoopDeaths != 0 {
		return fmt.Errorf("accept loop died %d times during the sweep", report.AcceptLoopDeaths)
	}

	// Chaos rider: dirty daemon kills under live clients.
	clients := scaled(1600)
	if clients < 8 {
		clients = 8
	} else if clients > 32 {
		clients = 32
	}
	restarts := scaled(500)
	if restarts < 3 {
		restarts = 3
	} else if restarts > 5 {
		restarts = 5
	}
	res, err := chaos.DaemonRestartChurn(clients, restarts)
	if err != nil {
		return fmt.Errorf("connmt chaos: %w", err)
	}
	report.Chaos = &connmtChaos{
		Clients:    res.Clients,
		Restarts:   res.Restarts,
		Acked:      res.Acked,
		Unknown:    res.Unknown,
		Reconnects: res.Reconnects,
		Resumes:    res.Resumes,
	}
	fmt.Printf("chaos: %d clients x %d dirty restarts: %d acked ops all durable, %d unknown-outcome, %d reconnects (%d resumed)\n",
		res.Clients, res.Restarts, res.Acked, res.Unknown, res.Reconnects, res.Resumes)

	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*connmtJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *connmtJSON)
	return nil
}

// connmtCell runs one sweep point: establish n handshaken connections
// (pacing the dials so the backlog never overflows), drive ops through
// all of them, read the daemon's counters while everything is still
// attached, then tear down.
func connmtCell(n, opsPerConn, bufBytes int, loopDeaths *int) (connmtPoint, error) {
	pt := connmtPoint{Conns: n}
	dev := pmem.New()
	d, err := daemon.New(dev,
		daemon.WithConnBufBytes(bufBytes),
		daemon.WithConnWorkers(1),
		daemon.WithMaxConns(-1),
		daemon.WithMaxSessions(-1))
	if err != nil {
		return pt, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	addr := l.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve(l) }()

	conns := make([]*proto.Conn, n)
	var (
		wg      sync.WaitGroup
		dialSem = make(chan struct{}, 128)
		dialErr atomic.Value
	)
	connectStart := time.Now()
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dialSem <- struct{}{}
			defer func() { <-dialSem }()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				dialErr.Store(fmt.Errorf("dial %d: %w", i, err))
				return
			}
			c := proto.NewConnBuf(nc, proto.Hello{}, bufBytes)
			if err := c.Handshake(); err != nil {
				dialErr.Store(fmt.Errorf("handshake %d: %w", i, err))
				nc.Close()
				return
			}
			conns[i] = c
		}(i)
	}
	wg.Wait()
	if err, _ := dialErr.Load().(error); err != nil {
		return pt, err
	}
	connectSecs := time.Since(connectStart).Seconds()
	pt.ConnectSeconds = connectSecs
	pt.ConnsPerSec = float64(n) / connectSecs

	var opErr atomic.Value
	opStart := time.Now()
	for _, c := range conns {
		wg.Add(1)
		go func(c *proto.Conn) {
			defer wg.Done()
			for k := 0; k < opsPerConn; k++ {
				if _, err := c.RoundTrip(&proto.Request{Op: proto.OpNop}); err != nil {
					opErr.Store(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err, _ := opErr.Load().(error); err != nil {
		return pt, fmt.Errorf("ops at %d conns: %w", n, err)
	}
	secs := time.Since(opStart).Seconds()
	pt.Ops = uint64(n * opsPerConn)
	pt.Seconds = secs
	pt.OpsPerSec = float64(pt.Ops) / secs

	st := d.Stats()
	pt.ActiveConns = st.ActiveConns
	pt.ActiveSessions = st.ActiveSessions
	pt.AcceptErrors = st.AcceptErrors
	pt.HandshakeRejects = st.HandshakeRejects
	if st.ActiveConns != n {
		return pt, fmt.Errorf("ActiveConns = %d with %d clients attached", st.ActiveConns, n)
	}

	for _, c := range conns {
		c.Close()
	}
	if err := d.Drain(5 * time.Second); err != nil {
		return pt, err
	}
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		*loopDeaths++ // Serve never returned after drain: loop wedged
	}
	return pt, nil
}

func runConnChaos() error {
	clients := scaled(3200)
	if clients < 8 {
		clients = 8
	} else if clients > 128 {
		clients = 128
	}
	restarts := scaled(800)
	if restarts < 3 {
		restarts = 3
	} else if restarts > 12 {
		restarts = 12
	}
	res, err := chaos.DaemonRestartChurn(clients, restarts)
	if err != nil {
		return err
	}
	table(
		[]string{"clients", "restarts", "acked", "unknown", "reconnects", "resumes"},
		[][]string{{
			fmt.Sprint(res.Clients), fmt.Sprint(res.Restarts), fmt.Sprint(res.Acked),
			fmt.Sprint(res.Unknown), fmt.Sprint(res.Reconnects), fmt.Sprint(res.Resumes),
		}})
	fmt.Println("every acknowledged op durable; every client reconnected")
	return nil
}
