package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"puddles/internal/core"
	"puddles/internal/daemon"
	"puddles/internal/pmem"
	"puddles/internal/proto"
)

// migrate: live pool migration pause vs pool size. Iterative pre-copy
// ships the bulk of the pool while a writer keeps committing; only the
// final quiesce (freeze → drain → last delta → cede) stops the world.
// The claim under test: the pause tracks one round's dirt — the
// writer's working set — not the pool, so growing the pool an order of
// magnitude leaves the pause flat and ms-scale while snapshot bytes
// and total time grow linearly. Each point migrates a pool of N
// puddles between two TCP daemons under a sustained single-writer
// load and reads the daemon's own MigReport; the sweep is emitted to
// -migratejson (default BENCH_10.json).

type migratePoint struct {
	Puddles       int     `json:"puddles"`
	PoolMB        float64 `json:"pool_mb"`
	Rounds        int     `json:"delta_rounds"`
	SnapshotMB    float64 `json:"snapshot_mb"`
	DeltaKB       float64 `json:"delta_kb"`
	FinalKB       float64 `json:"final_quiesce_kb"`
	PauseMs       float64 `json:"pause_ms"`
	TotalMs       float64 `json:"total_ms"`
	WriterOps     uint64  `json:"writer_ops"`
	MovesFollowed uint64  `json:"client_moves_followed"`
}

type migrateReport struct {
	Benchmark string         `json:"benchmark"`
	Results   []migratePoint `json:"results"`
}

func runMigrate() error {
	report := migrateReport{Benchmark: "live_migration_pause"}
	header := []string{"puddles", "pool", "rounds", "snapshot", "final delta", "pause", "total"}
	var rows [][]string
	for _, grants := range []int{1, 8, 32} {
		pt, err := migratePoint1(grants)
		if err != nil {
			return fmt.Errorf("%d puddles: %w", grants, err)
		}
		report.Results = append(report.Results, pt)
		rows = append(rows, []string{
			fmt.Sprint(pt.Puddles),
			fmt.Sprintf("%.0fMiB", pt.PoolMB),
			fmt.Sprint(pt.Rounds),
			fmt.Sprintf("%.0fMiB", pt.SnapshotMB),
			fmt.Sprintf("%.1fKiB", pt.FinalKB),
			fmt.Sprintf("%.2fms", pt.PauseMs),
			fmt.Sprintf("%.1fms", pt.TotalMs),
		})
	}
	table(header, rows)
	first, last := report.Results[0], report.Results[len(report.Results)-1]
	fmt.Printf("pool grew %.0fx, pause %.2fms -> %.2fms (stop-the-world tracks the writer's dirt, not pool size)\n",
		last.PoolMB/first.PoolMB, first.PauseMs, last.PauseMs)
	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*migrateJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *migrateJSON)
	return nil
}

func migratePoint1(grants int) (migratePoint, error) {
	fail := func(err error) (migratePoint, error) { return migratePoint{}, err }
	srcDev, tgtDev := pmem.New(), pmem.New()
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	defer l1.Close()
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	defer l2.Close()
	url1 := "tcp://" + l1.Addr().String()
	url2 := "tcp://" + l2.Addr().String()
	src, err := daemon.New(srcDev)
	if err != nil {
		return fail(err)
	}
	tgt, err := daemon.New(tgtDev)
	if err != nil {
		return fail(err)
	}
	go src.Serve(l1)
	go tgt.Serve(l2)

	cl, err := core.Dial(url1, srcDev)
	if err != nil {
		return fail(err)
	}
	defer cl.Close()
	cl.RegisterPeerDevice(url2, tgtDev)
	ti, err := cl.RegisterType("mig.slots", 8, nil)
	if err != nil {
		return fail(err)
	}
	pool, err := cl.CreatePool("mig", 0o666)
	if err != nil {
		return fail(err)
	}
	const slots = 512
	root, err := pool.CreateRoot(ti.ID, slots*8)
	if err != nil {
		return fail(err)
	}
	// Inflate the pool: cold bulk allocations force extra puddle
	// grants, growing the bytes the snapshot must ship without growing
	// the writer's working set.
	for len(pool.Puddles()) < grants+1 {
		if _, err := pool.Malloc(ti.ID, 256<<10); err != nil {
			return fail(fmt.Errorf("inflate: %w", err))
		}
	}
	var poolBytes uint64
	for _, pd := range pool.Puddles() {
		poolBytes += pd.Size()
	}

	// Sustained writer: one hot working set of 512 slots, dirtied for
	// the whole migration (and transparently following the move).
	var ops atomic.Uint64
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		var seq uint64
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			seq++
			slot := root + pmem.Addr((seq%slots)*8)
			if err := cl.Run(pool, func(tx *core.Tx) error { return tx.SetU64(slot, seq) }); err != nil {
				done <- err
				return
			}
			ops.Add(1)
		}
	}()
	time.Sleep(30 * time.Millisecond) // dirty a steady working set first

	nc, err := net.Dial("tcp", l1.Addr().String())
	if err != nil {
		return fail(err)
	}
	mig := proto.NewConnHello(nc, proto.Hello{})
	if err := mig.Handshake(); err != nil {
		return fail(err)
	}
	defer mig.Close()
	resp, err := mig.RoundTrip(&proto.Request{Op: proto.OpMigratePool, Name: "mig", Target: url2})
	if err != nil {
		return fail(fmt.Errorf("migrate: %w", err))
	}
	time.Sleep(10 * time.Millisecond) // let the writer land at the target
	close(stop)
	if err := <-done; err != nil {
		return fail(fmt.Errorf("writer: %w", err))
	}

	r := resp.Report
	return migratePoint{
		Puddles:       grants + 1, // data grants + the root puddle
		PoolMB:        float64(poolBytes) / (1 << 20),
		Rounds:        r.Rounds,
		SnapshotMB:    float64(r.SnapshotBytes) / (1 << 20),
		DeltaKB:       float64(r.DeltaBytes) / (1 << 10),
		FinalKB:       float64(r.FinalBytes) / (1 << 10),
		PauseMs:       float64(r.PauseNs) / 1e6,
		TotalMs:       float64(r.TotalNs) / 1e6,
		WriterOps:     ops.Load(),
		MovesFollowed: cl.MovesFollowed(),
	}, nil
}
