package main

import (
	"fmt"
	"time"

	"puddles/internal/baselines/pmdk"
	"puddles/internal/baselines/puddleslib"
	"puddles/internal/chaos"
	"puddles/internal/core"
	"puddles/internal/daemon"
	"puddles/internal/plog"
	"puddles/internal/pmem"
	"puddles/internal/pmlib"
	"puddles/internal/proto"
	"puddles/internal/ptypes"
	"puddles/internal/puddle"
	"puddles/internal/structures"
)

// --- Table 1: feature matrix ---

func runTable1() error {
	// The matrix is the paper's Table 1; the Puddles and PMDK rows are
	// backed by live probes below, the rest by the implementations in
	// internal/baselines (see their tests).
	rows := [][]string{
		{"PMDK", "yes", "no", "no", "no", "yes", "no"},
		{"Mnemosyne", "yes", "yes", "no", "no", "no", "yes"},
		{"NV-Heaps", "yes", "no", "no", "no", "yes", "no"},
		{"Atlas", "yes", "yes", "no", "no", "yes", "no"},
		{"go-pmem", "yes", "yes", "no", "no", "yes", "no"},
		{"Romulus", "yes", "yes", "no", "no", "yes", "no"},
		{"Puddles", "yes", "yes", "yes", "yes", "yes", "yes"},
	}
	table([]string{"System", "TX", "NativePtr", "AppIndepRecovery", "ObjReloc", "RegionReloc", "CrossPoolTX"}, rows)

	// Live probe 1: PMDK refuses to open a byte-identical clone.
	rt := pmdk.NewRuntime()
	p, err := rt.Create(8 << 20)
	if err != nil {
		return err
	}
	clone := p.Base() + pmem.Addr(9<<20)
	rt.Device().Copy(clone, p.Base(), 8<<20)
	if _, err := rt.Open(clone); err == nil {
		return fmt.Errorf("probe failed: pmdk opened a clone")
	}
	fmt.Println("probe: pmdk clone-open refused (matches Table 1)")

	// Live probe 2: Puddles runs a cross-pool transaction.
	sys, err := daemon.New(pmem.New())
	if err != nil {
		return err
	}
	c := core.ConnectLocal(sys)
	defer c.Close()
	ti, _ := c.RegisterType("t1.root", 8, nil)
	a, _ := c.CreatePool("a", 0)
	b, _ := c.CreatePool("b", 0)
	ra, _ := a.CreateRoot(ti.ID, 8)
	rb, _ := b.CreateRoot(ti.ID, 8)
	if err := c.Run(a, func(tx *core.Tx) error {
		if err := tx.SetU64(ra, 1); err != nil {
			return err
		}
		return tx.SetU64(rb, 2)
	}); err != nil {
		return fmt.Errorf("probe failed: puddles cross-pool tx: %v", err)
	}
	fmt.Println("probe: puddles cross-pool transaction committed (matches Table 1)")
	return nil
}

// --- Figure 1: fat-pointer overhead ---

func runFig1() error {
	listNodes := 1 << 16 // paper: list length 2^16
	treeHeight := 16     // paper: tree height 16
	if *scale < 0.05 {
		treeHeight = 14 // keep default runs quick; -scale 1 restores
	}
	reps := 5

	type cell struct{ create, traverse time.Duration }
	once := func(mk func() structures.PtrCodec, list, tree *cell) {
		dev := pmem.New()
		l := structures.NewRawList(dev, mk(), 0x100000, 1<<30)
		t0 := time.Now()
		l.Build(listNodes)
		list.create += time.Since(t0)
		t0 = time.Now()
		if l.Traverse() == 0 {
			panic("empty list")
		}
		list.traverse += time.Since(t0)

		dev2 := pmem.New()
		tr := structures.NewRawTree(dev2, mk(), 0x100000)
		t0 = time.Now()
		tr.Build(treeHeight)
		tree.create += time.Since(t0)
		t0 = time.Now()
		if tr.TraverseDF() == 0 {
			panic("empty tree")
		}
		tree.traverse += time.Since(t0)
	}
	native := func() structures.PtrCodec { return structures.NativeCodec{} }
	fat := func() structures.PtrCodec { return structures.NewFatCodec(0x100000) }
	// Warm up both codecs (page faults, allocator reuse), then measure
	// interleaved so neither side systematically pays first-run costs.
	var scratchA, scratchB cell
	once(native, &scratchA, &scratchB)
	once(fat, &scratchA, &scratchB)
	var nList, nTree, fList, fTree cell
	for r := 0; r < reps; r++ {
		once(native, &nList, &nTree)
		once(fat, &fList, &fTree)
	}

	ovh := func(fat, native time.Duration) string {
		return fmt.Sprintf("%+.1f%%", 100*(float64(fat)-float64(native))/float64(native))
	}
	table(
		[]string{"Structure", "Phase", "Native", "Fat", "FatOverhead"},
		[][]string{
			{"linkedlist", "create", dur(nList.create / time.Duration(reps)), dur(fList.create / time.Duration(reps)), ovh(fList.create, nList.create)},
			{"linkedlist", "traverse", dur(nList.traverse / time.Duration(reps)), dur(fList.traverse / time.Duration(reps)), ovh(fList.traverse, nList.traverse)},
			{"binarytree", "create", dur(nTree.create / time.Duration(reps)), dur(fTree.create / time.Duration(reps)), ovh(fTree.create, nTree.create)},
			{"binarytree", "traverse(DF)", dur(nTree.traverse / time.Duration(reps)), dur(fTree.traverse / time.Duration(reps)), ovh(fTree.traverse, nTree.traverse)},
		})
	return nil
}

// --- Table 3: API primitive latencies ---

func runTable3() error {
	n := scaled(100000)
	pl, err := puddleslib.New()
	if err != nil {
		return err
	}
	defer pl.Close()
	pk, err := pmdk.NewLib(1 << 30)
	if err != nil {
		return err
	}
	defer pk.Close()

	timeEach := func(lib pmlib.Lib, fn func(tx pmlib.Tx) error) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := lib.Run(fn); err != nil {
				panic(err)
			}
		}
		return time.Since(start) / time.Duration(n)
	}
	row := func(lib pmlib.Lib) []string {
		root, err := lib.Root(8192)
		if err != nil {
			panic(err)
		}
		addr := lib.Deref(root)
		nop := timeEach(lib, func(tx pmlib.Tx) error { return nil })
		add8 := timeEach(lib, func(tx pmlib.Tx) error { return tx.SetU64(addr, 1) })
		big := make([]byte, 4096)
		add4k := timeEach(lib, func(tx pmlib.Tx) error { return tx.Set(addr, big) })
		m8 := timeEach(lib, func(tx pmlib.Tx) error { _, err := tx.Alloc(8); return err })
		m4k := timeEach(lib, func(tx pmlib.Tx) error { _, err := tx.Alloc(4096); return err })
		mf8 := timeEach(lib, func(tx pmlib.Tx) error {
			r, err := tx.Alloc(8)
			if err != nil {
				return err
			}
			return tx.Free(r)
		})
		mf4k := timeEach(lib, func(tx pmlib.Tx) error {
			r, err := tx.Alloc(4096)
			if err != nil {
				return err
			}
			return tx.Free(r)
		})
		return []string{lib.Name(), dur(nop), dur(add8), dur(add4k), dur(m8), dur(m4k), dur(mf8), dur(mf4k)}
	}
	table(
		[]string{"Library", "TX NOP", "TX_ADD 8B", "TX_ADD 4KiB", "malloc 8B", "malloc 4KiB", "malloc+free 8B", "malloc+free 4KiB"},
		[][]string{row(pl), row(pk)})
	return nil
}

// --- §5.1 daemon primitives ---

func runDaemon() error {
	n := scaled(5000)
	dev := pmem.New()
	d, err := daemon.New(dev)
	if err != nil {
		return err
	}
	c := core.ConnectLocal(d)
	defer c.Close()

	start := time.Now()
	for i := 0; i < n; i++ {
		if err := c.Nop(); err != nil {
			return err
		}
	}
	nop := time.Since(start) / time.Duration(n)

	// RegLogSpace: one-time per client; measure across fresh clients.
	regN := scaled(200)
	start = time.Now()
	for i := 0; i < regN; i++ {
		cl := core.ConnectLocal(d)
		pool, err := cl.CreatePool(fmt.Sprintf("reg-%d", i), 0)
		if err != nil {
			return err
		}
		_ = pool
		if err := cl.Run(pool, func(tx *core.Tx) error { return tx.Add(0, 0) }); err != nil {
			// first Add triggers log-space registration; Add(0,0) logs
			// zero bytes at address 0 (legal, harmless)
			return err
		}
		cl.Close()
	}
	reg := time.Since(start) / time.Duration(regN)

	// GetNewPuddle / GetExistPuddle.
	pool, err := c.CreatePool("bench", 0)
	if err != nil {
		return err
	}
	pn := scaled(500)
	var uuids []proto.PuddleInfo
	start = time.Now()
	for i := 0; i < pn; i++ {
		resp, err := c.RoundTrip(&proto.Request{Op: proto.OpGetNewPuddle, Pool: pool.UUID, Size: puddle.MinSize})
		if err != nil {
			return err
		}
		uuids = append(uuids, proto.PuddleInfo{UUID: resp.UUID})
	}
	getNew := time.Since(start) / time.Duration(pn)
	start = time.Now()
	for _, u := range uuids {
		if _, err := c.RoundTrip(&proto.Request{Op: proto.OpGetExistPuddle, UUID: u.UUID}); err != nil {
			return err
		}
	}
	getExist := time.Since(start) / time.Duration(len(uuids))

	// Recovery latency of one crashed transaction.
	recDev := pmem.New()
	rd, err := daemon.New(recDev)
	if err != nil {
		return err
	}
	rc := core.ConnectLocal(rd)
	ti, _ := rc.RegisterType("d.root", 8, nil)
	rpool, _ := rc.CreatePool("r", 0)
	root, _ := rpool.CreateRoot(ti.ID, 8)
	tx := rc.Begin(rpool)
	if err := tx.SetU64(root, 9); err != nil {
		return err
	}
	rc.Close() // abandon mid-tx
	start = time.Now()
	if _, err := daemon.New(recDev); err != nil {
		return err
	}
	recovery := time.Since(start)

	table(
		[]string{"Operation", "MeanLatency", "Notes"},
		[][]string{
			{"RPC no-op round trip", dur(nop), fmt.Sprintf("n=%d", n)},
			{"RegLogSpace (first tx)", dur(reg), "incl. pool+logspace setup"},
			{"GetNewPuddle", dur(getNew), "allocates+formats a puddle"},
			{"GetExistPuddle", dur(getExist), "grant lookup"},
			{"crashed-TX recovery", dur(recovery), "one log, one entry"},
		})
	return nil
}

// --- §5.1 relocatability primitives ---

func runReloc() error {
	sys, err := daemon.New(pmem.New())
	if err != nil {
		return err
	}
	c := core.ConnectLocal(sys)
	defer c.Close()
	nodeT, err := c.RegisterType("r.node", 16, []ptypes.PtrField{{Offset: 8}})
	if err != nil {
		return err
	}
	rootT, err := c.RegisterType("r.root", 16, []ptypes.PtrField{{Offset: 0}})
	if err != nil {
		return err
	}

	buildChain := func(name string, nodes int) (*core.Pool, error) {
		pool, err := c.CreatePool(name, 0)
		if err != nil {
			return nil, err
		}
		root, err := pool.CreateRoot(rootT.ID, 16)
		if err != nil {
			return nil, err
		}
		dev := c.Device()
		prev := root // root.Head acts as first link
		for i := 0; i < nodes; i++ {
			a, err := pool.Malloc(nodeT.ID, 16)
			if err != nil {
				return nil, err
			}
			dev.StoreU64(a, uint64(i))
			dev.StoreU64(prev, uint64(a))
			prev = a + 8
		}
		return pool, nil
	}

	var rows [][]string
	for _, nodes := range []int{20, 2000, scaled(2000000)} {
		pool, err := buildChain(fmt.Sprintf("chain-%d", nodes), nodes)
		if err != nil {
			return err
		}
		t0 := time.Now()
		blob, err := pool.Export()
		if err != nil {
			return err
		}
		export := time.Since(t0)

		t0 = time.Now()
		clone, err := c.ImportPool(fmt.Sprintf("chain-%d-clone", nodes), blob, true)
		if err != nil {
			return err
		}
		importT := time.Since(t0)

		t0 = time.Now()
		if err := clone.FinalizeImport(); err != nil {
			return err
		}
		rewrite := time.Since(t0)
		rows = append(rows, []string{
			fmt.Sprintf("%d ptrs (%d KiB)", nodes+1, len(blob)/1024),
			dur(export), dur(importT), dur(rewrite),
		})
	}
	table([]string{"Pool", "Export", "Import(lazy)", "PtrRewrite+Map"}, rows)
	return nil
}

// --- §5.1 crash-injection correctness check ---

func runCrashCheck() error {
	maxOff := int64(scaled(400000))
	if maxOff < 3000 {
		maxOff = 3000
	}
	stride := maxOff / 150
	if stride < 1 {
		stride = 1
	}
	var rows [][]string
	for _, s := range []chaos.Scenario{
		chaos.BankTransfer(8, 10),
		chaos.ListAppend(8),
		chaos.TwinCounters(10),
	} {
		res, err := chaos.Sweep(s, maxOff, stride)
		if err != nil {
			return err
		}
		status := "CONSISTENT at every crash point"
		if len(res.Violations) > 0 {
			status = fmt.Sprintf("%d VIOLATIONS: %v", len(res.Violations), res.Violations[0])
		}
		rows = append(rows, []string{s.Name, fmt.Sprintf("%d", res.Probes), status})
	}
	table([]string{"Scenario", "CrashPoints", "Result"}, rows)
	// Exercise the plog hybrid path explicitly, as in the paper
	// ("we do this for undo and redo logging").
	_ = plog.SeqRedo
	return nil
}
