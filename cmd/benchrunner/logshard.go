package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"puddles/internal/core"
	"puddles/internal/daemon"
	"puddles/internal/plog"
	"puddles/internal/pmem"
	"puddles/internal/puddle"
	"puddles/internal/uid"
)

// logshard: the scaling proof for the sharded log space. Two sweeps
// over shard counts 1/2/4/8:
//
//   - Acquire/release throughput: W workers hammer the commit path's
//     log registration — AddLog/RemoveLog on a shared directory, each
//     op under its shard's latch exactly as core.Client latches it,
//     with the fence-drain model armed so the registration persists
//     sleep like real DIMM drains. One shard is the PR 2 design
//     (every worker behind one logMu); N shards let the stalls of
//     independent workers overlap. The daemon round trips that
//     surround registration in the full commit path are deliberately
//     excluded: they are CPU-bound protocol work that a single-CPU
//     runner serializes for every shard count alike, and they were
//     never under the latch being measured.
//
//   - Single-app recovery: one client (one registered log space)
//     abandons W in-flight transactions striped across its shards,
//     the "machine" reboots, and the daemon's worker pool fans out
//     over the shards of that single crashed application. With one
//     shard the same pool degenerates to a serial replay of the one
//     directory.
//
// The run is written to a JSON artifact (-logshardjson, default
// BENCH_4.json) so CI and later PRs can diff both curves.

type logshardCommitPoint struct {
	Shards    int     `json:"shards"`
	Workers   int     `json:"workers"`
	Ops       uint64  `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup_vs_1_shard"`
}

type logshardRecoveryPoint struct {
	Shards      int     `json:"shards"`
	PendingLogs int     `json:"pending_logs"`
	Seconds     float64 `json:"seconds"`
	Speedup     float64 `json:"speedup_vs_1_shard"`
}

type logshardReport struct {
	Benchmark       string                  `json:"benchmark"`
	FenceLatency    string                  `json:"fence_latency"`
	RecoveryFence   string                  `json:"recovery_fence_latency"`
	RecoveryWorkers int                     `json:"recovery_workers"`
	AcquireRelease  []logshardCommitPoint   `json:"acquire_release"`
	Recovery        []logshardRecoveryPoint `json:"recovery"`
}

const lsNodeSize = 16

func runLogShard() error {
	const (
		workers         = 8
		fenceLatency    = 100 * time.Microsecond
		recoveryFence   = 200 * time.Microsecond
		recoveryWorkers = 4
		pendingLogs     = 16
	)
	opsPerWorker := scaled(8000)
	report := logshardReport{
		Benchmark:       "logshard",
		FenceLatency:    fenceLatency.String(),
		RecoveryFence:   recoveryFence.String(),
		RecoveryWorkers: recoveryWorkers,
	}

	fmt.Println("acquire/release throughput (commit-path log registration under shard latches)")
	header := []string{"shards", "workers", "ops", "time", "ops/s", "speedup"}
	var rows [][]string
	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		ops, elapsed, err := logShardRegRun(shards, workers, opsPerWorker, fenceLatency)
		if err != nil {
			return fmt.Errorf("%d shards: %w", shards, err)
		}
		rps := float64(ops) / elapsed.Seconds()
		if shards == 1 {
			base = rps
		}
		speedup := 0.0
		if base > 0 {
			speedup = rps / base
		}
		report.AcquireRelease = append(report.AcquireRelease, logshardCommitPoint{
			Shards: shards, Workers: workers, Ops: ops,
			Seconds: elapsed.Seconds(), OpsPerSec: rps, Speedup: speedup,
		})
		rows = append(rows, []string{
			fmt.Sprint(shards), fmt.Sprint(workers), fmt.Sprint(ops),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", rps), fmt.Sprintf("%.2fx", speedup),
		})
	}
	table(header, rows)

	fmt.Println("\nsingle-app recovery (one crashed client, worker pool over its shards)")
	header = []string{"shards", "pending logs", "recovery time", "speedup"}
	rows = nil
	var baseRec float64
	for _, shards := range []int{1, 2, 4, 8} {
		elapsed, err := logShardRecoveryRun(shards, pendingLogs, recoveryWorkers, recoveryFence)
		if err != nil {
			return fmt.Errorf("recovery %d shards: %w", shards, err)
		}
		if shards == 1 {
			baseRec = elapsed.Seconds()
		}
		speedup := 0.0
		if elapsed.Seconds() > 0 {
			speedup = baseRec / elapsed.Seconds()
		}
		report.Recovery = append(report.Recovery, logshardRecoveryPoint{
			Shards: shards, PendingLogs: pendingLogs,
			Seconds: elapsed.Seconds(), Speedup: speedup,
		})
		rows = append(rows, []string{
			fmt.Sprint(shards), fmt.Sprint(pendingLogs),
			elapsed.Round(time.Millisecond).String(), fmt.Sprintf("%.2fx", speedup),
		})
	}
	table(header, rows)

	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*logshardJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *logshardJSON)
	return nil
}

// logShardRegRun measures W workers registering and unregistering
// logs on one sharded directory, latched per shard exactly the way
// core.Client latches acquireLog/releaseLog (cache-ablated mode).
// Each worker owns one pre-formatted log and drives its affinity
// shard, worker w -> shard w%N — the client's round-robin hint.
func logShardRegRun(shards, workers, opsPerWorker int, fence time.Duration) (uint64, time.Duration, error) {
	dev := pmem.New()
	const spaceBase = pmem.Addr(2 << 20)
	spaceSize := plog.SpaceSize(shards)
	pd, err := puddle.Format(dev, spaceBase, spaceSize, uid.New(), puddle.KindLogSpace, uid.Nil)
	if err != nil {
		return 0, 0, err
	}
	space, err := plog.FormatShardedLogSpace(pd, shards)
	if err != nil {
		return 0, 0, err
	}
	heads := make([]pmem.Addr, workers)
	ids := make([]uid.UUID, workers)
	logBase := spaceBase + pmem.Addr(spaceSize)
	for w := range heads {
		start := logBase + pmem.Addr(w)*0x4000
		l, err := plog.FormatLog(dev, pmem.Range{Start: start, End: start + 0x4000})
		if err != nil {
			return 0, 0, err
		}
		heads[w], ids[w] = l.Head(), uid.New()
	}
	latches := make([]sync.Mutex, shards)
	dev.SetFenceLatency(fence)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := w % shards
			for i := 0; i < opsPerWorker; i++ {
				latches[sh].Lock()
				err := space.AddLog(sh, heads[w], ids[w])
				latches[sh].Unlock()
				if err != nil {
					errs[w] = err
					return
				}
				latches[sh].Lock()
				ok := space.RemoveLog(sh, heads[w])
				latches[sh].Unlock()
				if !ok {
					errs[w] = fmt.Errorf("worker %d: registration vanished", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for w, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("worker %d: %w", w, err)
		}
	}
	return uint64(2 * workers * opsPerWorker), elapsed, nil
}

// logShardRecoveryRun leaves one application with pending in-flight
// logs striped over its shard directories, power-fails, and times the
// next daemon boot (which replays before serving — the paper's
// application-independent recovery window).
func logShardRecoveryRun(shards, pending, recoveryWorkers int, fence time.Duration) (time.Duration, error) {
	seedDev := pmem.New()
	d, err := daemon.New(seedDev)
	if err != nil {
		return 0, err
	}
	c := core.ConnectLocal(d)
	defer c.Close()
	if err := c.SetLogShards(shards); err != nil {
		return 0, err
	}
	ti, err := c.RegisterType("logshard.rec", lsNodeSize, nil)
	if err != nil {
		return 0, err
	}
	pool, err := c.CreatePool("logshard-rec", 0)
	if err != nil {
		return 0, err
	}
	for i := 0; i < pending; i++ {
		a, err := pool.Malloc(ti.ID, lsNodeSize)
		if err != nil {
			return 0, err
		}
		// Abandon an in-flight transaction: several undo entries give
		// replay real flush work.
		tx := c.Begin(pool)
		for k := 0; k < 8; k++ {
			if err := tx.SetU64(a+pmem.Addr(k%2)*8, uint64(k)); err != nil {
				return 0, err
			}
		}
	}
	var img bytes.Buffer
	if err := seedDev.Save(&img); err != nil {
		return 0, err
	}
	dev := pmem.New()
	if err := dev.Restore(bytes.NewReader(img.Bytes())); err != nil {
		return 0, err
	}
	dev.SetFenceLatency(fence)
	start := time.Now()
	d2, err := daemon.New(dev, daemon.WithRecoveryWorkers(recoveryWorkers))
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if got := d2.Stats().LogsReplayed; got != uint64(pending) {
		return 0, fmt.Errorf("replayed %d logs, want %d", got, pending)
	}
	return elapsed, nil
}
