package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"puddles/internal/daemon"
	"puddles/internal/pmem"
	"puddles/internal/proto"
	"puddles/internal/puddle"
)

// daemonmt: multi-client daemon metadata throughput — the scaling
// proof for the pipelined dispatch and per-entity journal. N clients
// each own a pool and loop GetNewPuddle/FreePuddle, the workload that
// used to serialize on the daemon's global mutex and re-gob the whole
// state per request. The device models the DIMM fence drain
// (SetFenceLatency, as ycsbmt does), so the run shows whether one
// client's metadata persist stalls everyone else: under the old global
// dispatch lock the fence stall was serialized into every request;
// with per-pool locks and per-entity journal batches the stalls of
// independent clients overlap. The run is written to a JSON artifact
// (-daemonjson, default BENCH_3.json) so CI and later PRs can diff
// multi-client daemon throughput.

type daemonmtPoint struct {
	Clients   int     `json:"clients"`
	Requests  uint64  `json:"requests"`
	Seconds   float64 `json:"seconds"`
	ReqPerSec float64 `json:"req_per_sec"`
	Speedup   float64 `json:"speedup_vs_1_client"`
}

type daemonmtReport struct {
	Benchmark     string          `json:"benchmark"`
	OpsPerClient  int             `json:"ops_per_client"`
	FenceLatency  string          `json:"fence_latency"`
	PersistErrors uint64          `json:"persist_errors"`
	Results       []daemonmtPoint `json:"results"`
}

func runDaemonMT() error {
	const fenceLatency = 6 * time.Microsecond
	opsPerClient := scaled(20000)
	report := daemonmtReport{
		Benchmark:    "daemon_concurrent_clients",
		OpsPerClient: opsPerClient,
		FenceLatency: fenceLatency.String(),
	}
	header := []string{"clients", "requests", "time", "req/s", "speedup"}
	var rows [][]string
	var base float64
	for _, clients := range []int{1, 2, 4, 8} {
		dev := pmem.New()
		d, err := daemon.New(dev)
		if err != nil {
			return err
		}
		dev.SetFenceLatency(fenceLatency)
		conns := make([]*proto.Conn, clients)
		pools := make([]*proto.Response, clients)
		for i := range conns {
			conns[i] = d.SelfConn()
			resp, err := conns[i].RoundTrip(&proto.Request{Op: proto.OpCreatePool, Name: fmt.Sprintf("mt-%d", i)})
			if err != nil {
				return err
			}
			pools[i] = resp
		}
		var wg sync.WaitGroup
		errs := make([]error, clients)
		start := time.Now()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c, pool := conns[w], pools[w]
				for i := 0; i < opsPerClient; i++ {
					resp, err := c.RoundTrip(&proto.Request{Op: proto.OpGetNewPuddle, Pool: pool.Pool, Size: puddle.MinSize})
					if err != nil {
						errs[w] = err
						return
					}
					if _, err := c.RoundTrip(&proto.Request{Op: proto.OpFreePuddle, UUID: resp.UUID}); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for w, err := range errs {
			if err != nil {
				return fmt.Errorf("client %d: %w", w, err)
			}
		}
		if err := d.CheckConsistency(); err != nil {
			return fmt.Errorf("%d clients: registry inconsistent: %w", clients, err)
		}
		report.PersistErrors += d.Stats().PersistErrors
		for _, c := range conns {
			c.Close()
		}
		reqs := uint64(2 * opsPerClient * clients)
		rps := float64(reqs) / elapsed.Seconds()
		if clients == 1 {
			base = rps
		}
		speedup := 0.0
		if base > 0 {
			speedup = rps / base
		}
		report.Results = append(report.Results, daemonmtPoint{
			Clients: clients, Requests: reqs,
			Seconds: elapsed.Seconds(), ReqPerSec: rps, Speedup: speedup,
		})
		rows = append(rows, []string{
			fmt.Sprint(clients), fmt.Sprint(reqs),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", rps), fmt.Sprintf("%.2fx", speedup),
		})
	}
	table(header, rows)
	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*daemonJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *daemonJSON)
	return nil
}
