// Benchrunner regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate. Each subcommand prints
// the same rows/series the paper reports; EXPERIMENTS.md records the
// shape comparison.
//
// Usage:
//
//	benchrunner [-scale N] <experiment>
//
// Experiments: table1 fig1 table3 daemon reloc crashcheck fig9 fig10
// fig11 fig12 fig14 ycsbmt daemonmt logshard ckpt ycsbread allocmt all
//
// -scale scales operation counts relative to the paper (default 0.01;
// 1.0 reproduces the paper's full sizes and takes correspondingly
// long).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"
)

var (
	scale        = flag.Float64("scale", 0.01, "operation-count scale relative to the paper")
	threads      = flag.String("threads", "1,2,4,8", "thread counts for fig12 (paper sweeps to 40 on a 20-core box)")
	jsonOut      = flag.String("json", "BENCH_2.json", "artifact path for the ycsbmt scaling report")
	daemonJSON   = flag.String("daemonjson", "BENCH_3.json", "artifact path for the daemonmt scaling report")
	logshardJSON = flag.String("logshardjson", "BENCH_4.json", "artifact path for the logshard scaling report")
	ckptJSON     = flag.String("ckptjson", "BENCH_5.json", "artifact path for the checkpoint-pause report")
	ycsbreadJSON = flag.String("ycsbreadjson", "BENCH_6.json", "artifact path for the read-path sweep report")
	allocmtJSON  = flag.String("allocmtjson", "BENCH_7.json", "artifact path for the allocator cache scaling report")
	connmtJSON   = flag.String("connmtjson", "BENCH_8.json", "artifact path for the connection scaling report")
	connMax      = flag.Int("connmax", 4096, "largest connection count in the connmt sweep")
	fencesJSON   = flag.String("fencesjson", "BENCH_9.json", "artifact path for the commit-discipline fence report")
	migrateJSON  = flag.String("migratejson", "BENCH_10.json", "artifact path for the live-migration pause report")
)

type experiment struct {
	name string
	desc string
	run  func() error
}

func main() {
	flag.Parse()
	exps := []experiment{
		{"table1", "feature matrix (Table 1)", runTable1},
		{"fig1", "fat-pointer overhead microbenchmarks (Figure 1)", runFig1},
		{"table3", "API primitive latencies (Table 3)", runTable3},
		{"daemon", "daemon primitive latencies (§5.1)", runDaemon},
		{"reloc", "relocatability primitives (§5.1)", runReloc},
		{"crashcheck", "crash-injection correctness check (§5.1)", runCrashCheck},
		{"fig9", "linked list vs PMDK and Romulus (Figure 9)", runFig9},
		{"fig10", "order-8 B-tree vs PMDK and Romulus (Figure 10)", runFig10},
		{"fig11", "YCSB A-G across five libraries (Figure 11)", runFig11},
		{"fig12", "multithreaded scaling (Figure 12)", runFig12},
		{"fig14", "sensor-network aggregation (Figures 13/14)", runFig14},
		{"ycsbmt", "multi-worker YCSB transaction scaling (emits -json artifact)", runYCSBMT},
		{"daemonmt", "multi-client daemon metadata scaling (emits -daemonjson artifact)", runDaemonMT},
		{"logshard", "sharded log-space commit + single-app recovery scaling (emits -logshardjson artifact)", runLogShard},
		{"ckpt", "compaction pause vs registry size, legacy vs chunked checkpoints (emits -ckptjson artifact)", runCkpt},
		{"ycsbread", "read-heavy YCSB B/C, latched vs seqlock reads (emits -ycsbreadjson artifact)", runYCSBRead},
		{"allocmt", "alloc/free cache scaling + 32/64-worker YCSB A (emits -allocmtjson artifact)", runAllocMT},
		{"connmt", "64-4096 real-socket connection scaling + restart chaos (emits -connmtjson artifact)", runConnMT},
		{"connchaos", "daemon kill/restart churn under live TCP clients", runConnChaos},
		{"fences", "undo vs MOD-shadow commit fences, O(1) checkpoint capture, arena spill (emits -fencesjson artifact)", runFences},
		{"migrate", "live-migration quiesce pause vs pool size under a sustained writer (emits -migratejson artifact)", runMigrate},
	}
	want := flag.Arg(0)
	if want == "" {
		fmt.Fprintln(os.Stderr, "usage: benchrunner [-scale N] <experiment>")
		for _, e := range exps {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", e.name, e.desc)
		}
		fmt.Fprintln(os.Stderr, "  all         run everything")
		os.Exit(2)
	}
	for _, e := range exps {
		if e.name == want || want == "all" {
			fmt.Printf("== %s: %s (scale %.3g) ==\n", e.name, e.desc, *scale)
			start := time.Now()
			if err := e.run(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Printf("-- %s done in %v --\n\n", e.name, time.Since(start).Round(time.Millisecond))
			if want != "all" {
				return
			}
		}
	}
	if want != "all" {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", want)
		os.Exit(2)
	}
}

// table writes an aligned table to stdout.
func table(header []string, rows [][]string) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, h)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		for i, c := range r {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

// scaled returns max(1, int(base*scale)).
func scaled(base int) int {
	n := int(float64(base) * *scale)
	if n < 1 {
		n = 1
	}
	return n
}

func dur(d time.Duration) string {
	if d < time.Microsecond {
		return d.String() // nanosecond resolution for primitive latencies
	}
	if d < time.Millisecond {
		return d.Round(10 * time.Nanosecond).String()
	}
	return d.Round(time.Microsecond).String()
}

func perOp(total time.Duration, ops int) string {
	if ops == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fµs", float64(total.Nanoseconds())/float64(ops)/1000)
}
