package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"puddles/internal/daemon"
	"puddles/internal/pmem"
	"puddles/internal/proto"
	"puddles/internal/puddle"
)

// ckpt: compaction pause vs registry size, old vs new. The v1
// checkpoint gob-encoded and wrote the WHOLE state while holding opMu
// exclusively, so every compaction stalled every in-flight request
// for O(registry) time; the v2 path captures only the entities
// dirtied since the last checkpoint under the quiesce and streams the
// chunks with the request path running. This benchmark builds
// registries an order of magnitude apart, runs the same steady churn
// against both checkpoint writers, forces compactions with
// daemon.CompactNow — which reports exactly the exclusive-opMu hold —
// and emits the pause distribution to -ckptjson (default
// BENCH_5.json): the legacy pause grows with the registry, the
// chunked pause tracks only the churn between compactions.

type ckptPoint struct {
	Mode        string  `json:"mode"` // "legacy" | "chunked"
	Puddles     int     `json:"puddles"`
	Compactions int     `json:"compactions"`
	PauseP50Us  float64 `json:"pause_p50_us"`
	PauseP99Us  float64 `json:"pause_p99_us"`
	PauseMaxUs  float64 `json:"pause_max_us"`
	CkptBytes   uint64  `json:"checkpoint_bytes_total"`
	CkptChunks  uint64  `json:"checkpoint_chunks_total"`
}

type ckptReport struct {
	Benchmark     string      `json:"benchmark"`
	ChurnPerCycle int         `json:"churn_ops_per_compaction"`
	Rounds        int         `json:"compactions_per_point"`
	Results       []ckptPoint `json:"results"`
}

func runCkpt() error {
	small := scaled(20000)
	if small < 8 {
		small = 8
	}
	sizes := []int{small, 10 * small}
	const rounds = 20
	const churn = 16 // mutations between forced compactions
	report := ckptReport{
		Benchmark:     "checkpoint_pause",
		ChurnPerCycle: churn,
		Rounds:        rounds,
	}
	header := []string{"mode", "puddles", "compactions", "pause p50", "pause p99", "pause max"}
	var rows [][]string
	for _, mode := range []string{"legacy", "chunked"} {
		for _, size := range sizes {
			pt, err := ckptPoint1(mode, size, rounds, churn)
			if err != nil {
				return fmt.Errorf("%s/%d puddles: %w", mode, size, err)
			}
			report.Results = append(report.Results, pt)
			rows = append(rows, []string{
				pt.Mode, fmt.Sprint(pt.Puddles), fmt.Sprint(pt.Compactions),
				fmt.Sprintf("%.1fµs", pt.PauseP50Us),
				fmt.Sprintf("%.1fµs", pt.PauseP99Us),
				fmt.Sprintf("%.1fµs", pt.PauseMaxUs),
			})
		}
	}
	table(header, rows)
	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*ckptJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *ckptJSON)
	return nil
}

func ckptPoint1(mode string, size, rounds, churn int) (ckptPoint, error) {
	var opts []daemon.Option
	if mode == "legacy" {
		opts = append(opts, daemon.WithLegacyCheckpoints())
	}
	dev := pmem.New()
	d, err := daemon.New(dev, opts...)
	if err != nil {
		return ckptPoint{}, err
	}
	c := d.SelfConn()
	defer c.Close()
	// Build the registry: size puddles spread over pools of 64.
	var churnPool *proto.Response
	for built := 0; built < size; {
		resp, err := c.RoundTrip(&proto.Request{
			Op: proto.OpCreatePool, Name: fmt.Sprintf("reg-%d", built),
		})
		if err != nil {
			return ckptPoint{}, err
		}
		churnPool = resp
		built++ // the root puddle
		for i := 0; i < 63 && built < size; i++ {
			if _, err := c.RoundTrip(&proto.Request{
				Op: proto.OpGetNewPuddle, Pool: resp.Pool, Size: puddle.MinSize,
			}); err != nil {
				return ckptPoint{}, err
			}
			built++
		}
	}
	// Settle the build into a checkpoint so the measured cycles see
	// steady-state churn, not the construction burst.
	if _, err := d.CompactNow(); err != nil {
		return ckptPoint{}, err
	}
	statsBefore := d.Stats()
	pauses := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		for i := 0; i < churn; i += 2 {
			resp, err := c.RoundTrip(&proto.Request{
				Op: proto.OpGetNewPuddle, Pool: churnPool.Pool, Size: puddle.MinSize,
			})
			if err != nil {
				return ckptPoint{}, err
			}
			if _, err := c.RoundTrip(&proto.Request{Op: proto.OpFreePuddle, UUID: resp.UUID}); err != nil {
				return ckptPoint{}, err
			}
		}
		pause, err := d.CompactNow()
		if err != nil {
			return ckptPoint{}, err
		}
		pauses = append(pauses, pause)
	}
	stats := d.Stats()
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(pauses)-1))
		return float64(pauses[i].Nanoseconds()) / 1000
	}
	return ckptPoint{
		Mode:        mode,
		Puddles:     size,
		Compactions: int(stats.Checkpoints - statsBefore.Checkpoints),
		PauseP50Us:  pct(0.50),
		PauseP99Us:  pct(0.99),
		PauseMaxUs:  pct(1.0),
		CkptBytes:   stats.CheckpointBytes,
		CkptChunks:  stats.CheckpointChunks,
	}, nil
}
