package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"puddles/internal/baselines/puddleslib"
	"puddles/internal/daemon"
	"puddles/internal/kvstore"
	"puddles/internal/pmem"
	"puddles/internal/proto"
	"puddles/internal/puddle"
	"puddles/internal/structures"
)

// fences: the fence-minimal commit evaluation (emits -fencesjson,
// default BENCH_9.json), three claims in one artifact:
//
//  1. Commit-discipline sweep: the same keyed-update workload through
//     the undo-log kvstore (per-append log fence + multi-stage commit)
//     and through MOD-style shadow maps (functional path copy, one
//     fence, root-pointer publish), 1–16 workers, with SetFenceLatency
//     modeling an Optane-class drain so the fence count shows up in
//     wall-clock throughput, not just a counter.
//  2. O(1) checkpoint capture: the quiesce pause of the copy-on-write
//     registry checkpoint must stay flat as the registry grows 10×
//     (200 → 2000 puddles) — the pause swaps a pending-delta list, it
//     no longer encodes or copies the registry.
//  3. Spill: a full registry image larger than one checkpoint-arena
//     half still checkpoints (it continues into the dead half), where
//     it previously wedged compaction forever.

const fenceLatency = 200 * time.Nanosecond // Optane-class eADR-less drain

type fencePoint struct {
	Discipline  string  `json:"discipline"` // "undo" | "shadow"
	Workers     int     `json:"workers"`
	Ops         int     `json:"ops"`
	Fences      uint64  `json:"fences"`
	FencesPerOp float64 `json:"fences_per_op"`
	KOpsPerSec  float64 `json:"kops_per_sec"`
}

type fenceCkptPoint struct {
	Puddles     int     `json:"puddles"`
	Compactions int     `json:"compactions"`
	PauseP50Us  float64 `json:"quiesce_p50_us"`
	PauseMaxUs  float64 `json:"quiesce_max_us"`
}

type fenceSpillResult struct {
	ArenaBytes uint64 `json:"arena_bytes"`
	HalfBytes  uint64 `json:"half_bytes"`
	ImageBytes uint64 `json:"image_bytes"`
	Spills     uint64 `json:"spills"`
	Ok         bool   `json:"checkpointed_ok"`
}

type fenceReport struct {
	Benchmark      string           `json:"benchmark"`
	FenceLatencyNs int64            `json:"fence_latency_ns"`
	Sweep          []fencePoint     `json:"commit_discipline_sweep"`
	Checkpoint     []fenceCkptPoint `json:"checkpoint_quiesce"`
	Spill          fenceSpillResult `json:"oversized_image_spill"`
}

func runFences() error {
	ops := scaled(200000)
	if ops < 1024 {
		ops = 1024
	}
	report := fenceReport{
		Benchmark:      "fence_minimal_commit",
		FenceLatencyNs: fenceLatency.Nanoseconds(),
	}

	header := []string{"discipline", "workers", "ops", "fences/op", "kops/s"}
	var rows [][]string
	for _, workers := range []int{1, 2, 4, 8, 16} {
		for _, disc := range []string{"undo", "shadow"} {
			pt, err := fencePoint1(disc, workers, ops)
			if err != nil {
				return fmt.Errorf("%s/%d workers: %w", disc, workers, err)
			}
			report.Sweep = append(report.Sweep, pt)
			rows = append(rows, []string{
				pt.Discipline, fmt.Sprint(pt.Workers), fmt.Sprint(pt.Ops),
				fmt.Sprintf("%.2f", pt.FencesPerOp),
				fmt.Sprintf("%.1f", pt.KOpsPerSec),
			})
		}
	}
	table(header, rows)

	for _, size := range []int{200, 2000} {
		pt, err := fenceCkpt1(size)
		if err != nil {
			return fmt.Errorf("ckpt/%d puddles: %w", size, err)
		}
		report.Checkpoint = append(report.Checkpoint, pt)
		fmt.Printf("quiesce @%d puddles: p50 %.1fµs, max %.1fµs\n",
			pt.Puddles, pt.PauseP50Us, pt.PauseMaxUs)
	}

	spill, err := fenceSpill1()
	if err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	report.Spill = spill
	fmt.Printf("spill: %d B image over %d B half → %d spill(s), ok=%v\n",
		spill.ImageBytes, spill.HalfBytes, spill.Spills, spill.Ok)

	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*fencesJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *fencesJSON)
	return nil
}

// fencePoint1 runs ops keyed updates split across workers under one
// commit discipline and reports the device's fence count and the
// wall-clock throughput with the fence drain switched on.
func fencePoint1(disc string, workers, ops int) (fencePoint, error) {
	pl, err := puddleslib.New()
	if err != nil {
		return fencePoint{}, err
	}
	dev := pl.Device()

	perWorker := ops / workers
	run := func(worker func(w, n int) error) (uint64, time.Duration, error) {
		dev.SetFenceLatency(fenceLatency)
		defer dev.SetFenceLatency(0)
		base := dev.Stats().Fences
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				errs[w] = worker(w, perWorker)
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, e := range errs {
			if e != nil {
				return 0, 0, e
			}
		}
		return dev.Stats().Fences - base, elapsed, nil
	}

	var fences uint64
	var elapsed time.Duration
	switch disc {
	case "undo":
		kv, err := kvstore.New(pl, kvstore.Options{
			Buckets: 1 << 12, ValueSize: 8, LatchStripes: 64,
		})
		if err != nil {
			return fencePoint{}, err
		}
		val := make([]byte, 8)
		fences, elapsed, err = run(func(w, n int) error {
			for i := 0; i < n; i++ {
				if err := kv.Put(uint64(w)<<32|uint64(i%4096), val); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fencePoint{}, err
		}
	case "shadow":
		// One shadow map per worker: the MOD structures are
		// single-writer by design, so a striped deployment is their
		// natural concurrent shape (stripes conflict on nothing).
		maps := make([]*structures.ShadowMap, workers)
		for w := range maps {
			if maps[w], err = structures.NewShadowMap(pl.Client(), pl.Pool()); err != nil {
				return fencePoint{}, err
			}
		}
		fences, elapsed, err = run(func(w, n int) error {
			m := maps[w]
			for i := 0; i < n; i++ {
				if err := m.Put(uint64(i%4096), uint64(i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fencePoint{}, err
		}
	default:
		return fencePoint{}, fmt.Errorf("unknown discipline %q", disc)
	}

	total := perWorker * workers
	return fencePoint{
		Discipline:  disc,
		Workers:     workers,
		Ops:         total,
		Fences:      fences,
		FencesPerOp: float64(fences) / float64(total),
		KOpsPerSec:  float64(total) / elapsed.Seconds() / 1000,
	}, nil
}

// fenceCkpt1 measures the checkpoint quiesce pause against a registry
// of size puddles — the copy-on-write registry makes capture O(1), so
// the pause must not follow the registry size.
func fenceCkpt1(size int) (fenceCkptPoint, error) {
	dev := pmem.New()
	d, err := daemon.New(dev)
	if err != nil {
		return fenceCkptPoint{}, err
	}
	c := d.SelfConn()
	defer c.Close()
	var churnPool *proto.Response
	for built := 0; built < size; {
		resp, err := c.RoundTrip(&proto.Request{
			Op: proto.OpCreatePool, Name: fmt.Sprintf("reg-%d", built),
		})
		if err != nil {
			return fenceCkptPoint{}, err
		}
		churnPool = resp
		built++
		for i := 0; i < 63 && built < size; i++ {
			if _, err := c.RoundTrip(&proto.Request{
				Op: proto.OpGetNewPuddle, Pool: resp.Pool, Size: puddle.MinSize,
			}); err != nil {
				return fenceCkptPoint{}, err
			}
			built++
		}
	}
	if _, err := d.CompactNow(); err != nil {
		return fenceCkptPoint{}, err
	}
	const rounds = 20
	const churn = 8
	statsBefore := d.Stats()
	pauses := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		for i := 0; i < churn; i++ {
			resp, err := c.RoundTrip(&proto.Request{
				Op: proto.OpGetNewPuddle, Pool: churnPool.Pool, Size: puddle.MinSize,
			})
			if err != nil {
				return fenceCkptPoint{}, err
			}
			if _, err := c.RoundTrip(&proto.Request{Op: proto.OpFreePuddle, UUID: resp.UUID}); err != nil {
				return fenceCkptPoint{}, err
			}
		}
		pause, err := d.CompactNow()
		if err != nil {
			return fenceCkptPoint{}, err
		}
		pauses = append(pauses, pause)
	}
	stats := d.Stats()
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	return fenceCkptPoint{
		Puddles:     size,
		Compactions: int(stats.Checkpoints - statsBefore.Checkpoints),
		PauseP50Us:  float64(pauses[len(pauses)/2].Nanoseconds()) / 1000,
		PauseMaxUs:  float64(pauses[len(pauses)-1].Nanoseconds()) / 1000,
	}, nil
}

// fenceSpill1 builds a registry whose full image outgrows one
// checkpoint-arena half and proves the full checkpoint still commits
// by spilling into the dead half.
func fenceSpill1() (fenceSpillResult, error) {
	const arena = 128 << 10
	dev := pmem.New()
	d, err := daemon.New(dev,
		daemon.WithCheckpointArena(arena),
		daemon.WithCheckpointChunkBytes(2<<10))
	if err != nil {
		return fenceSpillResult{}, err
	}
	c := d.SelfConn()
	defer c.Close()
	for i := 0; i < 150; i++ {
		resp, err := c.RoundTrip(&proto.Request{
			Op: proto.OpCreatePool, Name: fmt.Sprintf("spill-%d", i),
		})
		if err != nil {
			return fenceSpillResult{}, err
		}
		if _, err := c.RoundTrip(&proto.Request{
			Op: proto.OpGetNewPuddle, Pool: resp.Pool, Size: puddle.MinSize,
		}); err != nil {
			return fenceSpillResult{}, err
		}
	}
	before := d.Stats()
	_, err = d.CheckpointFull()
	after := d.Stats()
	return fenceSpillResult{
		ArenaBytes: arena,
		HalfBytes:  arena / 2,
		ImageBytes: after.CheckpointBytes - before.CheckpointBytes,
		Spills:     after.CheckpointSpills,
		Ok:         err == nil,
	}, err
}
