package main

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"puddles/internal/baselines/atlas"
	"puddles/internal/baselines/gopmem"
	"puddles/internal/baselines/pmdk"
	"puddles/internal/baselines/puddleslib"
	"puddles/internal/baselines/romulus"
	"puddles/internal/core"
	"puddles/internal/daemon"
	"puddles/internal/kvstore"
	"puddles/internal/pmem"
	"puddles/internal/pmlib"
	"puddles/internal/sensornet"
	"puddles/internal/structures"
	"puddles/internal/ycsb"
)

func lib3() ([]pmlib.Lib, error) {
	pl, err := puddleslib.New()
	if err != nil {
		return nil, err
	}
	pk, err := pmdk.NewLib(2 << 30)
	if err != nil {
		return nil, err
	}
	rm, err := romulus.NewLib(1 << 30)
	if err != nil {
		return nil, err
	}
	return []pmlib.Lib{pl, pk, rm}, nil
}

func lib5() ([]pmlib.Lib, error) {
	libs, err := lib3()
	if err != nil {
		return nil, err
	}
	gp, err := gopmem.NewLib(2 << 30)
	if err != nil {
		return nil, err
	}
	at, err := atlas.NewLib(2 << 30)
	if err != nil {
		return nil, err
	}
	return append(libs, gp, at), nil
}

// --- Figure 9: linked list ---

func runFig9() error {
	n := scaled(10000000) // paper: 10 M operations
	libs, err := lib3()
	if err != nil {
		return err
	}
	var rows [][]string
	for _, lib := range libs {
		l, err := structures.NewList(lib)
		if err != nil {
			return err
		}
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if err := l.Append(uint64(i)); err != nil {
				return fmt.Errorf("%s append: %w", lib.Name(), err)
			}
		}
		insert := time.Since(t0)
		t0 = time.Now()
		sum := l.Sum() // one pass visiting all n nodes
		traverse := time.Since(t0)
		if sum != uint64(n)*uint64(n-1)/2 {
			return fmt.Errorf("%s sum mismatch", lib.Name())
		}
		t0 = time.Now()
		for i := 0; i < n; i++ {
			if _, err := l.PopHead(); err != nil {
				return fmt.Errorf("%s delete: %w", lib.Name(), err)
			}
		}
		del := time.Since(t0)
		rows = append(rows, []string{lib.Name(), dur(traverse), dur(insert), dur(del),
			perOp(traverse, n), perOp(insert, n), perOp(del, n)})
		lib.Close()
	}
	fmt.Printf("operations: %d inserts, full traversal, %d deletes\n", n, n)
	table([]string{"Library", "Traversal", "Insert", "Delete", "trav/op", "ins/op", "del/op"}, rows)
	return nil
}

// --- Figure 10: order-8 B-tree ---

func runFig10() error {
	n := scaled(1000000)
	libs, err := lib3()
	if err != nil {
		return err
	}
	var rows [][]string
	for _, lib := range libs {
		bt, err := structures.NewBTree(lib)
		if err != nil {
			return err
		}
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if err := bt.Insert(scramble(uint64(i)), uint64(i)); err != nil {
				return fmt.Errorf("%s insert: %w", lib.Name(), err)
			}
		}
		insert := time.Since(t0)
		t0 = time.Now()
		for i := 0; i < n; i++ {
			if _, ok := bt.Search(scramble(uint64(i))); !ok {
				return fmt.Errorf("%s lost key %d", lib.Name(), i)
			}
		}
		search := time.Since(t0)
		t0 = time.Now()
		for i := 0; i < n; i++ {
			if _, err := bt.Delete(scramble(uint64(i))); err != nil {
				return fmt.Errorf("%s delete: %w", lib.Name(), err)
			}
		}
		del := time.Since(t0)
		rows = append(rows, []string{lib.Name(), dur(insert), dur(del), dur(search),
			perOp(insert, n), perOp(del, n), perOp(search, n)})
		lib.Close()
	}
	fmt.Printf("order-8 B-tree, 8 B keys and values, %d ops per phase\n", n)
	table([]string{"Library", "Insert", "Delete", "Search", "ins/op", "del/op", "srch/op"}, rows)
	return nil
}

func scramble(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return v
}

// --- Figure 11: YCSB A-G ---

func runFig11() error {
	records := scaled(1000000) // paper: 1 M keys load + 1 M ops
	ops := scaled(1000000)
	libs, err := lib5()
	if err != nil {
		return err
	}
	header := []string{"Workload"}
	for _, lib := range libs {
		header = append(header, lib.Name())
	}
	stores := make([]*kvstore.Store, len(libs))
	value := make([]byte, 100)
	for i, lib := range libs {
		s, err := kvstore.New(lib, kvstore.Options{Buckets: nextPow2(uint64(records)), ValueSize: 100})
		if err != nil {
			return err
		}
		for _, k := range ycsb.LoadKeys(uint64(records)) {
			if err := s.Put(k, value); err != nil {
				return fmt.Errorf("%s load: %w", lib.Name(), err)
			}
		}
		stores[i] = s
	}
	var rows [][]string
	for _, w := range ycsb.Workloads() {
		row := []string{w.Name}
		for i, lib := range libs {
			g := ycsb.NewGenerator(w, uint64(records), 42)
			s := stores[i]
			buf := make([]byte, 100)
			t0 := time.Now()
			for o := 0; o < ops; o++ {
				op := g.Next()
				switch op.Kind {
				case ycsb.OpRead:
					if err := s.Get(op.Key, buf); err != nil {
						return fmt.Errorf("%s/%s read %d: %w", lib.Name(), w.Name, op.Key, err)
					}
				case ycsb.OpUpdate, ycsb.OpInsert:
					if err := s.Put(op.Key, value); err != nil {
						return fmt.Errorf("%s/%s put: %w", lib.Name(), w.Name, err)
					}
				case ycsb.OpScan:
					s.Scan(op.Key, op.ScanLen, func(uint64, []byte) {})
				case ycsb.OpRMW:
					if err := s.Get(op.Key, buf); err != nil {
						return fmt.Errorf("%s/%s rmw: %w", lib.Name(), w.Name, err)
					}
					buf[0]++
					if err := s.Put(op.Key, buf); err != nil {
						return err
					}
				}
			}
			row = append(row, time.Since(t0).Round(time.Millisecond).String())
		}
		rows = append(rows, row)
	}
	fmt.Printf("KV store: %d-record load, %d ops per workload (execution time, lower is better)\n", records, ops)
	table(header, rows)
	for _, lib := range libs {
		lib.Close()
	}
	return nil
}

func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// --- Figure 12: multithreaded scaling ---

func runFig12() error {
	elems := scaled(1000000) // paper: 1 M-element float array
	iters := 3
	sys, err := daemon.New(pmem.New())
	if err != nil {
		return err
	}

	var counts []int
	for _, f := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad -threads: %w", err)
		}
		counts = append(counts, n)
	}

	var base time.Duration
	var rows [][]string
	for _, nt := range counts {
		// Each worker gets its own client (its own cached log puddle),
		// as the paper's threads do.
		clients := make([]*core.Client, nt)
		pools := make([]*core.Pool, nt)
		arrays := make([]pmem.Addr, nt)
		per := elems / nt
		for i := range clients {
			clients[i] = core.ConnectLocal(sys)
			ti, err := clients[i].RegisterType("f.arr", 8, nil)
			if err != nil {
				return err
			}
			pool, err := clients[i].CreatePool(fmt.Sprintf("euler-%d-%d", nt, i), 0)
			if err != nil {
				return err
			}
			a, err := pool.CreateRoot(ti.ID, uint32(per*8))
			if err != nil {
				return err
			}
			pools[i], arrays[i] = pool, a
		}
		t0 := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < nt; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c, pool, arr := clients[w], pools[w], arrays[w]
				dev := c.Device()
				const chunk = 256
				for it := 0; it < iters; it++ {
					for lo := 0; lo < per; lo += chunk {
						hi := lo + chunk
						if hi > per {
							hi = per
						}
						if err := c.Run(pool, func(tx *core.Tx) error {
							for e := lo; e < hi; e++ {
								at := arr + pmem.Addr(e*8)
								// "Euler's identity" stand-in arithmetic on
								// the persistent cell.
								v := dev.LoadU64(at)
								if err := tx.SetU64(at, v*2718281828+314159); err != nil {
									return err
								}
							}
							return nil
						}); err != nil {
							panic(err)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(t0)
		for _, c := range clients {
			c.Close()
		}
		if base == 0 {
			base = elapsed
		}
		speedup := float64(base) / float64(elapsed) * float64(counts[0])
		rows = append(rows, []string{
			fmt.Sprintf("%d", nt), elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	fmt.Printf("per-thread transactions over a %d-element persistent array, %d passes (host has %d CPUs; scaling flattens there, as the paper's does at its 20 physical cores)\n", elems, iters, runtime.NumCPU())
	table([]string{"Threads", "Time", "Throughput(norm)"}, rows)
	return nil
}

// --- Figures 13/14: sensor-network aggregation ---

func runFig14() error {
	nodes := scaled(200) // paper: 200 sensor nodes
	if nodes < 2 {
		nodes = 2
	}
	varCounts := []int{100, 200, 400, 800, 1600}
	if *scale < 0.05 {
		varCounts = []int{100, 200, 400}
	}
	var rows [][]string
	for _, vars := range varCounts {
		// Puddles path.
		home, err := sensornet.NewNode("home")
		if err != nil {
			return err
		}
		pool, err := home.BuildState(vars)
		if err != nil {
			return err
		}
		blob, err := sensornet.Distribute(pool)
		if err != nil {
			return err
		}
		uploads := make([][]byte, nodes)
		for i := 0; i < nodes; i++ {
			sn, err := sensornet.NewNode("sensor")
			if err != nil {
				return err
			}
			uploads[i], err = sn.SensorWork(blob, 100+int64(i))
			if err != nil {
				return err
			}
		}
		pSums, bd, err := home.AggregatePuddles(uploads)
		if err != nil {
			return err
		}

		// PMDK path.
		nw, err := sensornet.NewPMDKNetwork(vars)
		if err != nil {
			return err
		}
		kUploads := make([][]byte, nodes)
		for i := 0; i < nodes; i++ {
			kUploads[i], err = nw.SensorWorkPMDK(i, 100+int64(i))
			if err != nil {
				return err
			}
		}
		kSums, kDur, err := nw.AggregatePMDK(kUploads)
		if err != nil {
			return err
		}
		for i := range pSums {
			if pSums[i] != kSums[i] {
				return fmt.Errorf("aggregation mismatch at var %d", i)
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", nodes*vars/1000),
			kDur.Round(time.Millisecond).String(),
			bd.Total.Round(time.Millisecond).String(),
			bd.Import.Round(time.Millisecond).String(),
			bd.Rewrite.Round(time.Millisecond).String(),
			bd.AppLogic.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", float64(kDur)/float64(bd.Total)),
		})
	}
	fmt.Printf("aggregating state from %d sensor nodes (validated against a reference)\n", nodes)
	table([]string{"kVars", "PMDK", "Puddles", "pud:Import", "pud:Rewrite", "pud:AppLogic", "PMDK/Puddles"}, rows)
	return nil
}
