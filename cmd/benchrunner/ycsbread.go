package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"puddles/internal/baselines/puddleslib"
	"puddles/internal/kvstore"
	"puddles/internal/ycsb"
)

// ycsbread: the read-heavy sweep for the seqlock read path. YCSB B
// (95/5) and C (read-only) run at 1..16 workers twice — once with
// every read taking its stripe latch (the pre-seqlock baseline) and
// once optimistic — over the same loaded store shape as ycsbmt. The
// JSON artifact (-ycsbreadjson, default BENCH_6.json) records
// throughput, speedup-vs-1-worker per mode, and the read-path
// counters, so CI and later PRs can diff both scaling curves and
// check that optimistic reads almost never fall back to the latch.

type ycsbreadPoint struct {
	Workload  string  `json:"workload"`
	Mode      string  `json:"mode"` // "latched" | "optimistic"
	Workers   int     `json:"workers"`
	Ops       uint64  `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup_vs_1_worker"`
	Attempts  uint64  `json:"optimistic_attempts"`
	Retries   uint64  `json:"optimistic_retries"`
	Fallbacks uint64  `json:"latch_fallbacks"`
}

type ycsbreadReport struct {
	Benchmark    string          `json:"benchmark"`
	Records      uint64          `json:"records"`
	FenceLatency string          `json:"fence_latency"`
	LatchStripes int             `json:"latch_stripes"`
	Results      []ycsbreadPoint `json:"results"`
}

func runYCSBRead() error {
	const (
		records      = 8192
		stripes      = 512
		buckets      = 1 << 13
		valueSize    = 100
		fenceLatency = 6 * time.Microsecond
	)
	workerSweep := []int{1, 2, 4, 8, 16}
	opsAt1 := scaled(400000)
	report := ycsbreadReport{
		Benchmark:    "ycsb_read_path",
		Records:      records,
		FenceLatency: fenceLatency.String(),
		LatchStripes: stripes,
	}
	header := []string{"workload", "mode", "workers", "ops", "time", "ops/s", "speedup", "retries", "fallbacks"}
	var rows [][]string
	for _, latched := range []bool{true, false} {
		mode := "optimistic"
		if latched {
			mode = "latched"
		}
		var (
			stats []kvstore.ReadStats
			s     *kvstore.Store
			lib   *puddleslib.Lib
		)
		points, err := ycsb.RunReadSweep(func() (ycsb.KV, func(), error) {
			var err error
			lib, err = puddleslib.New()
			if err != nil {
				return nil, nil, err
			}
			s, err = kvstore.New(lib, kvstore.Options{
				Buckets: buckets, ValueSize: valueSize,
				LatchStripes: stripes, LatchedReads: latched,
			})
			if err != nil {
				lib.Close()
				return nil, nil, err
			}
			value := make([]byte, valueSize)
			for _, k := range ycsb.LoadKeys(records) {
				if err := s.Put(k, value); err != nil {
					lib.Close()
					return nil, nil, err
				}
			}
			lib.Device().SetFenceLatency(fenceLatency)
			return s, func() {
				stats = append(stats, s.ReadStats())
				lib.Close()
			}, nil
		}, ycsb.ReadSweepOptions{
			Workloads:       []string{"B", "C"},
			Workers:         workerSweep,
			Records:         records,
			OpsPerWorkerAt1: opsAt1,
			ValueSize:       valueSize,
			Seed:            42,
		})
		if err != nil {
			return err
		}
		var base float64
		for i, p := range points {
			ops := p.Result.OpsPerSec()
			if p.Workers == workerSweep[0] {
				base = ops
			}
			speedup := 0.0
			if base > 0 {
				speedup = ops / base
			}
			rs := stats[i]
			report.Results = append(report.Results, ycsbreadPoint{
				Workload: p.Workload, Mode: mode, Workers: p.Workers,
				Ops: p.Result.Ops, Seconds: p.Result.Duration.Seconds(),
				OpsPerSec: ops, Speedup: speedup,
				Attempts: rs.Attempts, Retries: rs.Retries, Fallbacks: rs.Fallbacks,
			})
			rows = append(rows, []string{
				p.Workload, mode, fmt.Sprint(p.Workers), fmt.Sprint(p.Result.Ops),
				p.Result.Duration.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", ops), fmt.Sprintf("%.2fx", speedup),
				fmt.Sprint(rs.Retries), fmt.Sprint(rs.Fallbacks),
			})
		}
	}
	table(header, rows)
	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*ycsbreadJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *ycsbreadJSON)
	return nil
}
