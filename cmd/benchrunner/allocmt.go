package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"puddles/internal/baselines/puddleslib"
	"puddles/internal/core"
	"puddles/internal/kvstore"
	"puddles/internal/pmem"
	"puddles/internal/ycsb"
)

// allocmt: allocator scale-out under worker caches. Part 1 is an
// alloc/free churn — every round each worker allocates a batch and
// frees the batch it allocated last round, except every fourth round
// it frees its *neighbour's* previous batch (a rotation, so no batch
// is freed twice), mixing foreign frees into a mostly-local stream —
// run with the worker caches on and off (SetAllocCache ablation).
// Part 2 runs 32/64-worker YCSB A (the paper's update-heavy mix) and
// D (5% inserts, which allocate) with caches toggled and reports the
// steady-state lease-conflict rate, which the per-worker caches are
// supposed to hold near zero. Results land in -allocmtjson (default
// BENCH_7.json).

type allocmtChurnPoint struct {
	Workers         int     `json:"workers"`
	Cached          bool    `json:"cached"`
	Ops             uint64  `json:"ops"`
	Seconds         float64 `json:"seconds"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	SpeedupVsShared float64 `json:"speedup_vs_shared"`
	LeaseConflicts  uint64  `json:"lease_conflicts"`
	SteadyConflicts uint64  `json:"steady_state_conflicts"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Refills         uint64  `json:"cache_refills"`
	Donations       uint64  `json:"slab_donations"`
}

type allocmtYCSBPoint struct {
	Workload       string  `json:"workload"`
	Workers        int     `json:"workers"`
	Cached         bool    `json:"cached"`
	Ops            uint64  `json:"ops"`
	Seconds        float64 `json:"seconds"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	LeaseConflicts uint64  `json:"lease_conflicts"`
	ConflictsPerOp float64 `json:"lease_conflicts_per_op"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

type allocmtReport struct {
	Benchmark    string              `json:"benchmark"`
	Scale        float64             `json:"scale"`
	ObjectSize   int                 `json:"object_size"`
	BatchSize    int                 `json:"batch_size"`
	FenceLatency string              `json:"fence_latency"`
	Churn        []allocmtChurnPoint `json:"churn"`
	YCSB         []allocmtYCSBPoint  `json:"ycsb"`
}

func runAllocMT() error {
	const (
		objSize      = 48 // size class 64: 63 objects per slab
		batch        = 8
		fenceLatency = 6 * time.Microsecond
	)
	rounds := scaled(4000)
	if rounds < 4 {
		rounds = 4
	}
	report := allocmtReport{
		Benchmark:    "alloc_cache_scaling",
		Scale:        *scale,
		ObjectSize:   objSize,
		BatchSize:    batch,
		FenceLatency: fenceLatency.String(),
	}

	header := []string{"workers", "mode", "ops", "time", "ops/s", "vs shared", "conflicts", "steady", "hit rate"}
	var rows [][]string
	for _, workers := range []int{1, 4, 8, 16, 32, 64} {
		var sharedOps float64
		for _, cached := range []bool{false, true} {
			// Best of three: cells are short enough that scheduler and
			// GC noise on a shared box swamps single-shot numbers.
			var pt allocmtChurnPoint
			for rep := 0; rep < 3; rep++ {
				p, err := allocChurnCell(workers, cached, rounds, batch, objSize, fenceLatency)
				if err != nil {
					return err
				}
				if rep == 0 || p.OpsPerSec > pt.OpsPerSec {
					pt = p
				}
			}
			if !cached {
				sharedOps = pt.OpsPerSec
			} else if sharedOps > 0 {
				pt.SpeedupVsShared = pt.OpsPerSec / sharedOps
			}
			report.Churn = append(report.Churn, pt)
			mode := "shared"
			if cached {
				mode = "cached"
			}
			rows = append(rows, []string{
				fmt.Sprint(workers), mode, fmt.Sprint(pt.Ops),
				time.Duration(pt.Seconds * float64(time.Second)).Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", pt.OpsPerSec),
				fmt.Sprintf("%.2fx", pt.SpeedupVsShared),
				fmt.Sprint(pt.LeaseConflicts), fmt.Sprint(pt.SteadyConflicts),
				fmt.Sprintf("%.1f%%", 100*pt.CacheHitRate),
			})
		}
	}
	table(header, rows)

	// A's updates overwrite in place, so its steady state proves the
	// conflict criterion with no allocator traffic at all; D's 5%
	// inserts keep the worker caches in the hot path at 32/64 workers.
	ycsbHeader := []string{"wl", "workers", "mode", "ops", "time", "ops/s", "conflicts", "per op", "hit rate"}
	var ycsbRows [][]string
	for _, cell := range []struct {
		workload string
		workers  int
		cached   bool
	}{{"A", 32, false}, {"A", 32, true}, {"A", 64, true}, {"D", 32, true}, {"D", 64, true}} {
		var pt allocmtYCSBPoint
		for rep := 0; rep < 2; rep++ {
			p, err := allocYCSBCell(cell.workload, cell.workers, cell.cached, fenceLatency)
			if err != nil {
				return err
			}
			if rep == 0 || p.OpsPerSec > pt.OpsPerSec {
				pt = p
			}
		}
		report.YCSB = append(report.YCSB, pt)
		mode := "shared"
		if cell.cached {
			mode = "cached"
		}
		ycsbRows = append(ycsbRows, []string{
			pt.Workload, fmt.Sprint(pt.Workers), mode, fmt.Sprint(pt.Ops),
			time.Duration(pt.Seconds * float64(time.Second)).Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", pt.OpsPerSec),
			fmt.Sprint(pt.LeaseConflicts), fmt.Sprintf("%.2e", pt.ConflictsPerOp),
			fmt.Sprintf("%.1f%%", 100*pt.CacheHitRate),
		})
	}
	fmt.Println("YCSB:")
	table(ycsbHeader, ycsbRows)

	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*allocmtJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *allocmtJSON)
	return nil
}

// allocChurnCell runs one (workers, mode) churn cell. Steady-state
// conflicts are counted over the second half of the rounds, after the
// caches have warmed and per-worker slabs converged.
func allocChurnCell(workers int, cached bool, rounds, batch, objSize int, fence time.Duration) (allocmtChurnPoint, error) {
	pt := allocmtChurnPoint{Workers: workers, Cached: cached}
	lib, err := puddleslib.New()
	if err != nil {
		return pt, err
	}
	defer lib.Close()
	c, pool := lib.Client(), lib.Pool()
	if !cached {
		c.SetAllocCache(false)
	}
	ti, err := c.RegisterType("bench.allocnode", uint32(objSize), nil)
	if err != nil {
		return pt, err
	}
	dev := lib.Device()
	dev.SetFenceLatency(fence)

	prev := make([][]pmem.Addr, workers)
	statsBefore := dev.Stats()
	var steadyBase uint64
	var ops atomic.Uint64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if r == rounds/2 {
			steadyBase = dev.Stats().LeaseConflicts
		}
		cur := make([][]pmem.Addr, workers)
		errs := make(chan error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Mostly frees its own previous batch; every fourth
				// round frees the neighbour's, so foreign frees land in
				// someone else's parked slab.
				victim := w
				if r%4 == 3 {
					victim = (w + 1) % workers
				}
				victims := prev[victim]
				var mine []pmem.Addr
				err := c.Run(pool, func(tx *core.Tx) error {
					// Frees first: the free-target lease is acquired
					// before the transaction is entangled, so it waits
					// out contention instead of dying wait-die young.
					for _, a := range victims {
						if err := tx.Free(a); err != nil {
							return err
						}
					}
					mine = mine[:0]
					for i := 0; i < batch; i++ {
						a, err := tx.Alloc(ti.ID, uint32(objSize))
						if err != nil {
							return err
						}
						if err := tx.SetU64(a, uint64(a)); err != nil {
							return err
						}
						mine = append(mine, a)
					}
					return nil
				})
				if err == nil {
					ops.Add(uint64(batch + len(victims)))
					cur[w] = mine
				}
				errs <- err
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return pt, err
			}
		}
		prev = cur
	}
	elapsed := time.Since(start)
	statsAfter := dev.Stats()

	pt.Ops = ops.Load()
	pt.Seconds = elapsed.Seconds()
	if pt.Seconds > 0 {
		pt.OpsPerSec = float64(pt.Ops) / pt.Seconds
	}
	pt.LeaseConflicts = statsAfter.LeaseConflicts - statsBefore.LeaseConflicts
	pt.SteadyConflicts = statsAfter.LeaseConflicts - steadyBase
	pt.Refills = statsAfter.CacheRefills - statsBefore.CacheRefills
	pt.Donations = statsAfter.SlabDonations - statsBefore.SlabDonations
	if tot := statsAfter.CacheHits - statsBefore.CacheHits + statsAfter.CacheMisses - statsBefore.CacheMisses +
		statsAfter.CacheRefills - statsBefore.CacheRefills; tot > 0 {
		pt.CacheHitRate = float64(statsAfter.CacheHits-statsBefore.CacheHits) / float64(tot)
	}
	return pt, nil
}

// allocYCSBCell reruns the ycsbmt YCSB A cell at high worker counts
// with the allocator cache toggled, reporting lease conflicts per op.
func allocYCSBCell(workload string, workers int, cached bool, fence time.Duration) (allocmtYCSBPoint, error) {
	const records = 8192
	pt := allocmtYCSBPoint{Workload: workload, Workers: workers, Cached: cached}
	w, err := ycsb.WorkloadByName(workload)
	if err != nil {
		return pt, err
	}
	lib, err := puddleslib.New()
	if err != nil {
		return pt, err
	}
	defer lib.Close()
	if !cached {
		lib.Client().SetAllocCache(false)
	}
	s, err := kvstore.New(lib, kvstore.Options{Buckets: 1 << 13, ValueSize: 100, LatchStripes: 512})
	if err != nil {
		return pt, err
	}
	value := make([]byte, 100)
	for _, k := range ycsb.LoadKeys(records) {
		if err := s.Put(k, value); err != nil {
			return pt, err
		}
	}
	dev := lib.Device()
	dev.SetFenceLatency(fence)
	statsBefore := dev.Stats()
	res, err := ycsb.RunConcurrent(s, w, records, ycsb.ConcurrentOptions{
		Workers:      workers,
		OpsPerWorker: scaled(200000) / workers,
		ValueSize:    100,
		Seed:         42,
	})
	if err != nil {
		return pt, err
	}
	statsAfter := dev.Stats()
	pt.Ops = res.Ops
	pt.Seconds = res.Duration.Seconds()
	pt.OpsPerSec = res.OpsPerSec()
	pt.LeaseConflicts = statsAfter.LeaseConflicts - statsBefore.LeaseConflicts
	if res.Ops > 0 {
		pt.ConflictsPerOp = float64(pt.LeaseConflicts) / float64(res.Ops)
	}
	if tot := statsAfter.CacheHits - statsBefore.CacheHits + statsAfter.CacheMisses - statsBefore.CacheMisses +
		statsAfter.CacheRefills - statsBefore.CacheRefills; tot > 0 {
		pt.CacheHitRate = float64(statsAfter.CacheHits-statsBefore.CacheHits) / float64(tot)
	}
	return pt, nil
}
