// Puddled is the privileged Puddles daemon (paper Fig. 2): it owns the
// device image, manages the global puddle space, and replays
// crash-consistency logs on boot — before any client can connect.
//
// Usage:
//
//	puddled -socket /tmp/puddled.sock -store /var/lib/puddles/machine.img
//
// The image file stands in for the DAX-mounted PM filesystem: it is
// restored at boot (running recovery if the previous run ended dirty)
// and saved on clean shutdown and periodically. Control clients
// (cmd/puddlectl) speak the daemon protocol over the UNIX socket.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"puddles/internal/daemon"
	"puddles/internal/pmem"
)

func main() {
	var (
		socket      = flag.String("socket", "/tmp/puddled.sock", "UNIX domain socket path")
		store       = flag.String("store", "puddled.img", "device image file (DAX filesystem stand-in)")
		syncSecs    = flag.Int("sync", 5, "seconds between image syncs (0 disables)")
		connWorkers = flag.Int("conn-workers", 0, "pipelined dispatch workers per connection (0 = auto, 1 = serial)")
		recWorkers  = flag.Int("recovery-workers", 0, "concurrent recovery replay workers over log-space shards and apps (0 = auto, 1 = serial)")
		legacyCkpt  = flag.Bool("legacy-checkpoints", false, "write v1 whole-state A/B snapshot slots instead of chunked checkpoint chains (image downgrade/testing)")
		verbose     = flag.Bool("v", false, "log client operations")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "puddled: ", log.LstdFlags)

	dev := pmem.New()
	if err := dev.RestoreFile(*store); err != nil {
		logger.Fatalf("restoring %s: %v", *store, err)
	}
	opts := []daemon.Option{
		daemon.WithConnWorkers(*connWorkers),
		daemon.WithRecoveryWorkers(*recWorkers),
	}
	if *legacyCkpt {
		opts = append(opts, daemon.WithLegacyCheckpoints())
	}
	if *verbose {
		opts = append(opts, daemon.WithLogger(logger))
	}
	d, err := daemon.New(dev, opts...)
	if err != nil {
		logger.Fatalf("boot: %v", err)
	}
	st := d.Stats()
	logger.Printf("booted: %d pools, %d puddles; recovery passes so far: %d; checkpoint seq %d (%d chunks streamed)",
		st.Pools, st.Puddles, st.Recoveries, st.CheckpointSeq, st.CheckpointChunks)

	os.Remove(*socket)
	l, err := net.Listen("unix", *socket)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("serving on %s (store %s)", *socket, *store)

	// Periodic image sync: bounds data loss to the sync interval if the
	// host dies (the simulated medium itself is process memory).
	stopSync := make(chan struct{})
	if *syncSecs > 0 {
		go func() {
			t := time.NewTicker(time.Duration(*syncSecs) * time.Second)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := dev.SaveFile(*store); err != nil {
						logger.Printf("sync: %v", err)
					}
				case <-stopSync:
					return
				}
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		logger.Printf("shutting down")
		close(stopSync)
		d.Shutdown()
		if err := dev.SaveFile(*store); err != nil {
			logger.Printf("final save: %v", err)
		}
		l.Close()
	}()

	if err := d.Serve(l); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}
