// Puddled is the privileged Puddles daemon (paper Fig. 2): it owns the
// device image, manages the global puddle space, and replays
// crash-consistency logs on boot — before any client can connect.
//
// Usage:
//
//	puddled -socket /tmp/puddled.sock -tcp 127.0.0.1:7464 -store /var/lib/puddles/machine.img
//
// The image file stands in for the DAX-mounted PM filesystem: it is
// restored at boot (running recovery if the previous run ended dirty)
// and saved on clean shutdown and periodically. Clients speak the
// session protocol over the UNIX socket or TCP front end.
//
// Lifecycle signals:
//
//	SIGTERM/SIGINT  graceful drain: stop accepting, finish in-flight
//	                requests, checkpoint, save the image, exit.
//	SIGHUP          zero-downtime restart: drain while KEEPING the
//	                listener fds, save the image, exec a successor
//	                with -inherit that adopts the live sockets — the
//	                kernel backlog carries new connections across the
//	                gap, and clients resume their sessions.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"puddles/internal/daemon"
	"puddles/internal/inherit"
	"puddles/internal/pmem"
)

func main() {
	var (
		socket       = flag.String("socket", "/tmp/puddled.sock", "UNIX domain socket path (empty disables)")
		tcpAddr      = flag.String("tcp", "", "TCP listen address, e.g. 127.0.0.1:7464 (empty disables)")
		store        = flag.String("store", "puddled.img", "device image file (DAX filesystem stand-in)")
		syncSecs     = flag.Int("sync", 5, "seconds between image syncs (0 disables)")
		connWorkers  = flag.Int("conn-workers", 0, "pipelined dispatch workers per connection (0 = auto, 1 = serial)")
		recWorkers   = flag.Int("recovery-workers", 0, "concurrent recovery replay workers over log-space shards and apps (0 = auto, 1 = serial)")
		legacyCkpt   = flag.Bool("legacy-checkpoints", false, "write v1 whole-state A/B snapshot slots instead of chunked checkpoint chains (image downgrade/testing)")
		inheritFDs   = flag.Bool("inherit", false, "adopt listener fds from a predecessor (set by the SIGHUP restart path)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long a drain waits for in-flight requests")
		maxConns     = flag.Int("max-conns", 0, "concurrent client connection cap (0 = default, -1 = unlimited)")
		maxSessions  = flag.Int("max-sessions", 0, "live session cap (0 = default, -1 = unlimited)")
		sessionIdle  = flag.Duration("session-idle", 0, "idle timeout for detached sessions (0 = default)")
		maxGrants    = flag.Int("max-grants-per-session", 0, "outstanding puddle grants per session (0 = unlimited)")
		maxBytes     = flag.Uint64("max-bytes-per-session", 0, "cumulative carved bytes per session (0 = unlimited)")
		tlsCert      = flag.String("tls-cert", "", "PEM certificate; with -tls-key, wraps the TCP front end in TLS (tcps://)")
		tlsKey       = flag.String("tls-key", "", "PEM private key for -tls-cert")
		advertise    = flag.String("advertise", "", "URL peers reach this daemon at (tcp://host:port or tcps://...), enables acting as a migration source with warm standby")
		verbose      = flag.Bool("v", false, "log client operations")
	)
	flag.Parse()
	gen := inherit.Generation()
	logger := log.New(os.Stderr, fmt.Sprintf("puddled[gen %d]: ", gen), log.LstdFlags)

	dev := pmem.New()
	if err := dev.RestoreFile(*store); err != nil {
		logger.Fatalf("restoring %s: %v", *store, err)
	}
	opts := []daemon.Option{
		daemon.WithConnWorkers(*connWorkers),
		daemon.WithRecoveryWorkers(*recWorkers),
		daemon.WithMaxConns(*maxConns),
		daemon.WithMaxSessions(*maxSessions),
		daemon.WithSessionIdle(*sessionIdle),
		daemon.WithMaxGrantsPerSession(*maxGrants),
		daemon.WithMaxBytesPerSession(*maxBytes),
	}
	if *legacyCkpt {
		opts = append(opts, daemon.WithLegacyCheckpoints())
	}
	if *advertise != "" {
		opts = append(opts, daemon.WithAdvertiseURL(*advertise))
	}
	var tlsConf *tls.Config
	if *tlsCert != "" || *tlsKey != "" {
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			logger.Fatalf("loading TLS keypair: %v", err)
		}
		tlsConf = &tls.Config{Certificates: []tls.Certificate{cert}}
	}
	if *verbose {
		opts = append(opts, daemon.WithLogger(logger))
	}
	d, err := daemon.New(dev, opts...)
	if err != nil {
		logger.Fatalf("boot: %v", err)
	}
	st := d.Stats()
	logger.Printf("booted: %d pools, %d puddles; recovery passes so far: %d; checkpoint seq %d (%d chunks streamed)",
		st.Pools, st.Puddles, st.Recoveries, st.CheckpointSeq, st.CheckpointChunks)

	// Front ends: inherited fds from a predecessor (SIGHUP restart), or
	// fresh binds from the flags.
	var listeners []net.Listener
	if *inheritFDs {
		listeners, err = inherit.Listeners()
		if err != nil {
			logger.Fatalf("adopting inherited listeners: %v", err)
		}
		if len(listeners) == 0 {
			logger.Fatalf("-inherit set but no listeners in the environment")
		}
		for _, l := range listeners {
			logger.Printf("inherited %s listener on %v", l.Addr().Network(), l.Addr())
		}
	} else {
		if *socket != "" {
			os.Remove(*socket)
			l, err := net.Listen("unix", *socket)
			if err != nil {
				logger.Fatalf("listen unix %s: %v", *socket, err)
			}
			listeners = append(listeners, l)
		}
		if *tcpAddr != "" {
			l, err := net.Listen("tcp", *tcpAddr)
			if err != nil {
				logger.Fatalf("listen tcp %s: %v", *tcpAddr, err)
			}
			if tlsConf != nil {
				l = tls.NewListener(l, tlsConf)
				logger.Printf("TLS enabled on %s", *tcpAddr)
			}
			listeners = append(listeners, l)
		}
		if len(listeners) == 0 {
			logger.Fatalf("no front end: both -socket and -tcp are empty")
		}
	}
	for _, l := range listeners {
		logger.Printf("serving on %s://%v (store %s)", l.Addr().Network(), l.Addr(), *store)
		go func(l net.Listener) {
			if err := d.Serve(l); err != nil {
				logger.Printf("serve %v: %v", l.Addr(), err)
			}
		}(l)
	}

	// Drive any in-flight migrations the previous run left behind to
	// exactly one owner, and restart replication streams. Runs after
	// the front ends are up (resolution dials migration peers, who may
	// need to dial back).
	go func() {
		if n := d.ResolveMigrations(); n > 0 {
			logger.Printf("%d migration(s) unresolved (peer unreachable); affected pools stay frozen until a recover pass", n)
		}
	}()

	// Periodic image sync: bounds data loss to the sync interval if the
	// host dies (the simulated medium itself is process memory).
	stopSync := make(chan struct{})
	if *syncSecs > 0 {
		go func() {
			t := time.NewTicker(time.Duration(*syncSecs) * time.Second)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := dev.SaveFile(*store); err != nil {
						logger.Printf("sync: %v", err)
					}
				case <-stopSync:
					return
				}
			}
		}()
	}

	save := func() {
		if err := dev.SaveFile(*store); err != nil {
			logger.Printf("final save: %v", err)
		}
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case s := <-sigc:
			close(stopSync)
			if s == syscall.SIGHUP {
				restart(d, dev, logger, listeners, *drainTimeout, save)
				return // not reached on success (restart exits)
			}
			logger.Printf("draining (signal %v)", s)
			d.Drain(*drainTimeout)
			save()
			logger.Printf("clean shutdown")
			return
		case <-d.Done():
			// Remote OpShutdown (puddlectl shutdown): the daemon has
			// already checkpointed; persist the image and exit.
			select {
			case <-stopSync:
			default:
				close(stopSync)
			}
			save()
			logger.Printf("shut down by client request")
			return
		}
	}
}

// restart hands the live listener fds to a successor process: drain
// (keeping the fds), save the image the successor will boot from, then
// exec it with -inherit. The kernel backlog queues new connections
// during the gap; nothing is refused.
func restart(d *daemon.Daemon, dev *pmem.Device, logger *log.Logger, listeners []net.Listener, drainTimeout time.Duration, save func()) {
	logger.Printf("restart requested: draining with listener fds held")
	d.Detach(drainTimeout)
	save() // successor boots from this image
	args := append([]string(nil), os.Args[1:]...)
	args = append(args, "-inherit")
	cmd, files, err := inherit.Command(args, listeners)
	if err != nil {
		logger.Fatalf("restart: exporting listeners: %v", err)
	}
	cmd.Env = append(cmd.Env, inherit.GenerationEnv())
	if err := cmd.Start(); err != nil {
		logger.Fatalf("restart: starting successor: %v", err)
	}
	for _, f := range files {
		f.Close()
	}
	logger.Printf("successor pid %d started; exiting", cmd.Process.Pid)
	cmd.Process.Release()
	os.Exit(0)
}
