// Puddlectl is the control-plane client for a running puddled: it
// lists pools, inspects daemon state, exports and imports pool
// containers, and triggers recovery — all over the daemon protocol on
// the UNIX socket. (Data-plane access — mapping puddles — requires
// sharing the daemon's device and is in-process only; see DESIGN.md
// §2 on the fd-passing substitution.)
//
// Usage:
//
//	puddlectl [-socket /tmp/puddled.sock] <command> [args]
//
// -socket also accepts a daemon URL ("unix:///path", "tcp://host:port"),
// so a TCP-fronted daemon is administrable remotely.
//
// Commands:
//
//	stat                     daemon counters
//	pools                    list pools
//	types                    list registered pointer maps
//	export <pool> <file>     export a pool container
//	import <pool> <file>     import a container as a new pool
//	delete <pool>            delete a pool
//	migrate <pool> <url>     live-migrate a pool to the daemon at url
//	standby <pool> <url>     migrate, keeping a warm standby here
//	failover <pool>          promote this daemon's standby copy to owner
//	resolve                  retry resolution of in-flight migrations
//	recover                  force a recovery pass
//	shutdown                 cleanly stop the daemon
package main

import (
	"flag"
	"fmt"
	"os"

	"puddles/internal/core"
	"puddles/internal/proto"
)

func main() {
	socket := flag.String("socket", "/tmp/puddled.sock", "puddled socket path or URL (unix:///path, tcp://host:port)")
	uid := flag.Uint("uid", uint(os.Getuid()), "credential uid (must match the socket peer on UNIX sockets)")
	gid := flag.Uint("gid", uint(os.Getgid()), "credential gid")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: puddlectl [-socket PATH|URL] <stat|pools|types|export|import|delete|migrate|standby|failover|resolve|recover|shutdown> [args]")
		os.Exit(2)
	}
	network, address, err := core.ParseURL(*socket)
	if err != nil {
		fatal("%v", err)
	}
	nc, err := core.DialNet(network, address)
	if err != nil {
		fatal("connecting to %s: %v", *socket, err)
	}
	// Credentials ride the session handshake (and OpHello for daemons
	// that predate it).
	c := proto.NewConnHello(nc, proto.Hello{UID: uint32(*uid), GID: uint32(*gid)})
	defer c.Close()
	if *uid != 0 || *gid != 0 {
		if _, err := c.RoundTrip(&proto.Request{Op: proto.OpHello, UID: uint32(*uid), GID: uint32(*gid)}); err != nil {
			fatal("hello: %v", err)
		}
	}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "stat":
		resp := must(c, &proto.Request{Op: proto.OpStat})
		s := resp.Stats
		fmt.Printf("pools            %d\n", s.Pools)
		fmt.Printf("puddles          %d\n", s.Puddles)
		fmt.Printf("reserved bytes   %d\n", s.ReservedBytes)
		fmt.Printf("log spaces       %d\n", s.LogSpaces)
		fmt.Printf("pointer maps     %d\n", s.Types)
		fmt.Printf("recovery passes  %d\n", s.Recoveries)
		fmt.Printf("logs replayed    %d\n", s.LogsReplayed)
		fmt.Printf("entries applied  %d\n", s.EntriesApplied)
		fmt.Printf("imports          %d\n", s.Imports)
		fmt.Printf("persist errors   %d\n", s.PersistErrors)
		fmt.Printf("dispatch panics  %d\n", s.DispatchPanics)
		fmt.Printf("journal bytes    %d\n", s.JournalBytes)
		fmt.Printf("checkpoints      %d (seq %d, %d chunks, %d bytes)\n",
			s.Checkpoints, s.CheckpointSeq, s.CheckpointChunks, s.CheckpointBytes)
		fmt.Printf("ckpt spills      %d (registry gen %d)\n", s.CheckpointSpills, s.RegistryGen)
		avg := uint64(0)
		if s.Checkpoints > 0 {
			avg = s.CkptPauseTotalNs / s.Checkpoints
		}
		fmt.Printf("ckpt pause       avg %dns, max %dns\n", avg, s.CkptPauseMaxNs)
		hitRate := 0.0
		if ops := s.CacheHits + s.CacheMisses + s.CacheRefills; ops > 0 {
			hitRate = 100 * float64(s.CacheHits) / float64(ops)
		}
		fmt.Printf("alloc cache      %d hits (%.1f%%), %d misses, %d refills\n",
			s.CacheHits, hitRate, s.CacheMisses, s.CacheRefills)
		fmt.Printf("slab donations   %d (reclaimed after crash: %d)\n",
			s.SlabDonations, s.ReclaimedSlabs)
		fmt.Printf("active conns     %d\n", s.ActiveConns)
		fmt.Printf("active sessions  %d\n", s.ActiveSessions)
		fmt.Printf("accept errors    %d\n", s.AcceptErrors)
		fmt.Printf("handshake rejects %d\n", s.HandshakeRejects)
		fmt.Printf("session resumes  %d\n", s.SessionResumes)
		fmt.Printf("pool cap rejects %d\n", s.PoolCapRejects)
		fmt.Printf("quota rejects    %d grants, %d bytes\n", s.GrantCapRejects, s.ByteCapRejects)
		fmt.Printf("migrations       %d out, %d in, %d aborted\n",
			s.MigrationsOut, s.MigrationsIn, s.MigrationAborts)
		fmt.Printf("replication      %d rounds, %d bytes shipped, %d failovers\n",
			s.ReplicaSyncs, s.ReplicaBytes, s.Failovers)
	case "pools":
		resp := must(c, &proto.Request{Op: proto.OpListPools})
		for _, n := range resp.Names {
			fmt.Println(n)
		}
	case "types":
		resp := must(c, &proto.Request{Op: proto.OpListTypes})
		for _, ti := range resp.Types {
			fmt.Printf("%#016x  %-30s size=%-6d ptrs=%d\n", uint64(ti.ID), ti.Name, ti.Size, len(ti.Ptrs))
		}
	case "export":
		need(args, 2, "export <pool> <file>")
		resp := must(c, &proto.Request{Op: proto.OpExportPool, Name: args[0]})
		if err := os.WriteFile(args[1], resp.Blob, 0o644); err != nil {
			fatal("writing %s: %v", args[1], err)
		}
		fmt.Printf("exported %q: %d bytes\n", args[0], len(resp.Blob))
	case "import":
		need(args, 2, "import <pool> <file>")
		blob, err := os.ReadFile(args[1])
		if err != nil {
			fatal("reading %s: %v", args[1], err)
		}
		resp := must(c, &proto.Request{Op: proto.OpImportPool, Name: args[0], Blob: blob})
		// Control-plane import: map every puddle eagerly via the
		// daemon (pointer rewrite needs a data-plane client; the
		// daemon-side copy still lands content and the session stays
		// resumable).
		for _, pi := range resp.Puddles {
			must(c, &proto.Request{Op: proto.OpImportMap, Session: resp.Session, UUID: pi.UUID})
		}
		done := must(c, &proto.Request{Op: proto.OpImportDone, Session: resp.Session})
		fmt.Printf("imported %q: root at %#x (%d puddles)\n", args[0], done.Addr, len(resp.Puddles))
	case "delete":
		need(args, 1, "delete <pool>")
		must(c, &proto.Request{Op: proto.OpDeletePool, Name: args[0]})
		fmt.Printf("deleted %q\n", args[0])
	case "migrate", "standby":
		need(args, 2, cmd+" <pool> <url>")
		var kind uint64
		if cmd == "standby" {
			kind = 1 // retain a warm standby at the source
		}
		resp := must(c, &proto.Request{Op: proto.OpMigratePool, Name: args[0], Target: args[1], Kind: kind})
		r := resp.Report
		fmt.Printf("migrated %q to %s: %d delta rounds, %d snapshot + %d delta bytes, pause %.2fms, total %.1fms\n",
			args[0], args[1], r.Rounds, r.SnapshotBytes, r.DeltaBytes,
			float64(r.PauseNs)/1e6, float64(r.TotalNs)/1e6)
	case "failover":
		need(args, 1, "failover <pool>")
		must(c, &proto.Request{Op: proto.OpFailover, Name: args[0]})
		fmt.Printf("promoted standby %q to owner\n", args[0])
	case "resolve":
		resp := must(c, &proto.Request{Op: proto.OpResolveMig})
		if resp.Size > 0 {
			fmt.Printf("%d migration(s) still unresolved (peer unreachable)\n", resp.Size)
		} else {
			fmt.Println("all migrations resolved")
		}
	case "recover":
		resp := must(c, &proto.Request{Op: proto.OpRecoverNow})
		fmt.Printf("recovery pass %d complete (%d logs replayed total)\n",
			resp.Stats.Recoveries, resp.Stats.LogsReplayed)
	case "shutdown":
		must(c, &proto.Request{Op: proto.OpShutdown})
		fmt.Println("daemon shut down cleanly")
	default:
		fatal("unknown command %q", cmd)
	}
}

func must(c *proto.Conn, req *proto.Request) *proto.Response {
	resp, err := c.RoundTrip(req)
	if err != nil {
		fatal("%v", err)
	}
	return resp
}

func need(args []string, n int, usage string) {
	if len(args) != n {
		fatal("usage: puddlectl %s", usage)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "puddlectl: "+format+"\n", args...)
	os.Exit(1)
}
