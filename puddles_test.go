package puddles_test

import (
	"path/filepath"
	"testing"

	"puddles"
)

type node struct {
	Value uint64
	Next  puddles.Ptr
}

func TestQuickstartFlow(t *testing.T) {
	sys, err := puddles.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	client := sys.Connect()
	defer client.Close()

	nodeT, err := client.RegisterLayout("Node", node{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := client.CreatePool("mydata", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	root, err := pool.CreateRoot(nodeT.ID, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Run(pool, func(tx *puddles.Tx) error {
		return tx.SetU64(root, 42)
	}); err != nil {
		t.Fatal(err)
	}
	if v := sys.Device().LoadU64(root); v != 42 {
		t.Fatalf("root value = %d", v)
	}
	st := sys.Stats()
	if st.Pools < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFileBackedSystemSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.img")
	sys, err := puddles.OpenSystemFile(path)
	if err != nil {
		t.Fatal(err)
	}
	client := sys.Connect()
	nodeT, _ := client.RegisterLayout("Node", node{})
	pool, err := client.CreatePool("durable", 0)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := pool.CreateRoot(nodeT.ID, 16)
	client.Run(pool, func(tx *puddles.Tx) error { return tx.SetU64(root, 7) })
	client.Close()
	if err := sys.Shutdown(); err != nil {
		t.Fatal(err)
	}

	sys2, err := puddles.OpenSystemFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Shutdown()
	client2 := sys2.Connect()
	defer client2.Close()
	pool2, err := client2.OpenPool("durable")
	if err != nil {
		t.Fatal(err)
	}
	root2, err := pool2.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root2 != root {
		t.Fatal("root moved across restart")
	}
	if v := sys2.Device().LoadU64(root2); v != 7 {
		t.Fatalf("value = %d", v)
	}
}

func TestFileBackedCrashRecovers(t *testing.T) {
	// End-to-end through the public API: crash without shutdown, then
	// reopening the image triggers application-independent recovery.
	path := filepath.Join(t.TempDir(), "crash.img")
	sys, err := puddles.OpenSystemFile(path)
	if err != nil {
		t.Fatal(err)
	}
	client := sys.Connect()
	nodeT, _ := client.RegisterLayout("Node", node{})
	pool, _ := client.CreatePool("app", 0)
	root, _ := pool.CreateRoot(nodeT.ID, 16)
	client.Run(pool, func(tx *puddles.Tx) error { return tx.SetU64(root, 1) })

	// Open a transaction and abandon it mid-flight (simulated crash).
	tx := client.Begin(pool)
	if err := tx.SetU64(root, 999); err != nil {
		t.Fatal(err)
	}
	if err := sys.Crash(); err != nil { // power failure, no commit
		t.Fatal(err)
	}

	sys2, err := puddles.OpenSystemFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Shutdown()
	if v := sys2.Device().LoadU64(root); v != 1 {
		t.Fatalf("recovery failed: root = %d, want 1", v)
	}
	if sys2.Stats().Recoveries != 1 {
		t.Fatalf("stats = %+v", sys2.Stats())
	}
}

func TestCloneViaExportImport(t *testing.T) {
	sys, _ := puddles.NewSystem()
	defer sys.Shutdown()
	client := sys.Connect()
	defer client.Close()
	nodeT, _ := client.RegisterLayout("Node", node{})
	pool, _ := client.CreatePool("orig", 0)
	root, _ := pool.CreateRoot(nodeT.ID, 16)
	client.Run(pool, func(tx *puddles.Tx) error { return tx.SetU64(root, 11) })

	blob, err := pool.Export()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := client.ImportPool("clone", blob, false)
	if err != nil {
		t.Fatal(err)
	}
	cloneRoot, err := clone.Root()
	if err != nil {
		t.Fatal(err)
	}
	if cloneRoot == root {
		t.Fatal("clone not relocated")
	}
	if v := sys.Device().LoadU64(cloneRoot); v != 11 {
		t.Fatalf("clone value = %d", v)
	}
}

func TestIDOfStable(t *testing.T) {
	if puddles.IDOf("x") != puddles.IDOf("x") || puddles.IDOf("x") == puddles.IDOf("y") {
		t.Fatal("IDOf broken")
	}
}
