// Sensornet runs a small instance of the paper's §5.3 data-aggregation
// workload through the public API: a home node distributes a pointer-
// rich state structure, isolated sensor nodes mutate their copies, and
// the home node aggregates the uploads — importing every copy into an
// address space where the original already lives, so every pointer is
// rewritten on the way in. PMDK refuses this scenario outright
// (copies share a UUID and cannot even be opened together).
package main

import (
	"fmt"
	"log"

	"puddles"
)

// StateVar is one sensor reading slot.
type StateVar struct {
	ID    uint64
	Value uint64
	Next  puddles.Ptr
}

// StateRoot anchors the variable list.
type StateRoot struct {
	Head puddles.Ptr
	Pad  uint64
}

const (
	nodes = 5
	vars  = 64
)

func buildState(sys *puddles.System, c *puddles.Client) (*puddles.Pool, puddles.Addr, error) {
	varT, err := c.RegisterLayout("StateVar", StateVar{})
	if err != nil {
		return nil, 0, err
	}
	rootT, err := c.RegisterLayout("StateRoot", StateRoot{})
	if err != nil {
		return nil, 0, err
	}
	pool, err := c.CreatePool("state", 0o600)
	if err != nil {
		return nil, 0, err
	}
	root, err := pool.CreateRoot(rootT.ID, 16)
	if err != nil {
		return nil, 0, err
	}
	dev := sys.Device()
	prev := puddles.Addr(0)
	for i := 0; i < vars; i++ {
		a, err := pool.Malloc(varT.ID, 24)
		if err != nil {
			return nil, 0, err
		}
		dev.StoreU64(a, uint64(i))
		if prev == 0 {
			dev.StoreU64(root, uint64(a))
		} else {
			dev.StoreU64(prev+16, uint64(a))
		}
		prev = a
	}
	return pool, root, nil
}

func main() {
	// Home machine.
	home, err := puddles.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer home.Shutdown()
	hc := home.Connect()
	defer hc.Close()
	pool, _, err := buildState(home, hc)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := pool.Export()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("home: distributed %d state vars (%d-byte container)\n", vars, len(blob))

	// Independent sensor machines: each imports the state into ITS OWN
	// global puddle space, mutates it transactionally, exports back.
	uploads := make([][]byte, nodes)
	for n := 0; n < nodes; n++ {
		sensor, err := puddles.NewSystem()
		if err != nil {
			log.Fatal(err)
		}
		sc := sensor.Connect()
		sp, err := sc.ImportPool("state", blob, false)
		if err != nil {
			log.Fatal(err)
		}
		root, err := sp.Root()
		if err != nil {
			log.Fatal(err)
		}
		dev := sensor.Device()
		if err := sc.Run(sp, func(tx *puddles.Tx) error {
			i := uint64(0)
			for p := puddles.Addr(dev.LoadU64(root)); p != 0; p = puddles.Addr(dev.LoadU64(p + 16)) {
				if err := tx.SetU64(p+8, uint64(n+1)*10+i%7); err != nil {
					return err
				}
				i++
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		uploads[n], err = sp.Export()
		if err != nil {
			log.Fatal(err)
		}
		sc.Close()
		sensor.Shutdown()
	}
	fmt.Printf("sensors: %d nodes uploaded modified copies\n", nodes)

	// Aggregate: import each upload back into the home machine. The
	// originals still occupy those addresses, so the import path
	// relocates every puddle and rewrites every pointer.
	dev := home.Device()
	sums := make([]uint64, vars)
	for n, up := range uploads {
		cp, err := hc.ImportPool(fmt.Sprintf("upload-%d", n), up, true) // lazy: faults map on demand
		if err != nil {
			log.Fatal(err)
		}
		root, err := cp.ImportedRoot()
		if err != nil {
			log.Fatal(err)
		}
		i := 0
		for p := puddles.Addr(dev.LoadU64(root)); p != 0; p = puddles.Addr(dev.LoadU64(p + 16)) {
			sums[i] += dev.LoadU64(p + 8)
			i++
		}
		stats, _ := cp.ImportStats()
		if err := cp.FinalizeImport(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("home: upload-%d aggregated (%d puddles, %d on-demand faults, %d pointers rewritten)\n",
			n, stats.Puddles, stats.Faults, stats.PtrsRewrote)
	}
	fmt.Printf("home: aggregate of var[0..4] = %v\n", sums[:5])
}
