// Crashdemo tells the paper's §2.1 story end to end: an application
// crashes mid-transaction and NEVER RESTARTS. With file-backed
// Puddles, the next boot of the machine (the daemon) recovers the data
// before anyone maps it; a completely different application then reads
// a consistent state. No PMDK-style "re-run the same program so it can
// fix its own data".
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"puddles"
)

// Document is the persistent state of our imaginary editor.
type Document struct {
	Revision uint64
	Words    uint64
}

func main() {
	dir, err := os.MkdirTemp("", "puddles-crashdemo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	image := filepath.Join(dir, "machine.img")

	// --- life 1: the "editor" application ---
	sys, err := puddles.OpenSystemFile(image)
	if err != nil {
		log.Fatal(err)
	}
	editor := sys.Connect()
	docT, _ := editor.RegisterLayout("Document", Document{})
	pool, err := editor.CreatePool("document", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := pool.CreateRoot(docT.ID, 16)
	if err != nil {
		log.Fatal(err)
	}
	dev := sys.Device()
	if err := editor.Run(pool, func(tx *puddles.Tx) error {
		if err := tx.SetU64(doc, 1); err != nil { // revision
			return err
		}
		return tx.SetU64(doc+8, 1000) // words
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("editor: saved revision %d with %d words\n", dev.LoadU64(doc), dev.LoadU64(doc+8))

	// The editor starts revision 2 ... and the machine loses power
	// half-way through the transaction.
	tx := editor.Begin(pool)
	if err := tx.SetU64(doc, 2); err != nil {
		log.Fatal(err)
	}
	// (crash before the word count is written or the tx commits)
	if err := sys.Crash(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("editor: CRASH mid-transaction (revision half-written)")

	// --- life 2: a different program on the rebooted machine ---
	sys2, err := puddles.OpenSystemFile(image)
	if err != nil {
		log.Fatal(err)
	}
	defer sys2.Shutdown()
	st := sys2.Stats()
	fmt.Printf("reboot: daemon replayed %d log(s), %d entr(ies) — before any app connected\n",
		st.LogsReplayed, st.EntriesApplied)

	viewer := sys2.Connect() // a different application entirely
	defer viewer.Close()
	pool2, err := viewer.OpenPool("document")
	if err != nil {
		log.Fatal(err)
	}
	doc2, err := pool2.Root()
	if err != nil {
		log.Fatal(err)
	}
	rev := sys2.Device().LoadU64(doc2)
	words := sys2.Device().LoadU64(doc2 + 8)
	fmt.Printf("viewer: document is revision %d with %d words\n", rev, words)
	if rev == 1 && words == 1000 {
		fmt.Println("viewer: state is consistent — the torn revision was rolled back")
	} else {
		log.Fatalf("INCONSISTENT STATE: revision=%d words=%d", rev, words)
	}
}
