// Quickstart: boot a Puddles system, create a pool, build a persistent
// linked list with failure-atomic transactions, and traverse it with
// plain native pointers — the paper's Figure 4/8 running example.
package main

import (
	"fmt"
	"log"

	"puddles"
)

// Node is a persistent type. Fields of type puddles.Ptr become entries
// in the registered pointer map, which is what makes the data
// relocatable later.
type Node struct {
	Value uint64
	Next  puddles.Ptr
}

// ListRoot anchors the list.
type ListRoot struct {
	Head puddles.Ptr
	Tail puddles.Ptr
}

func main() {
	sys, err := puddles.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	client := sys.Connect()
	defer client.Close()

	nodeT, err := client.RegisterLayout("Node", Node{})
	if err != nil {
		log.Fatal(err)
	}
	rootT, err := client.RegisterLayout("ListRoot", ListRoot{})
	if err != nil {
		log.Fatal(err)
	}

	pool, err := client.CreatePool("quickstart", 0o600)
	if err != nil {
		log.Fatal(err)
	}
	root, err := pool.CreateRoot(rootT.ID, 16)
	if err != nil {
		log.Fatal(err)
	}

	dev := sys.Device()
	// Append ten nodes, one failure-atomic transaction each: the node
	// allocation, the tail link (undo-logged) and the tail pointer
	// (redo-logged) commit or vanish together.
	for i := uint64(1); i <= 10; i++ {
		err := client.Run(pool, func(tx *puddles.Tx) error {
			n, err := tx.Alloc(nodeT.ID, 16)
			if err != nil {
				return err
			}
			dev.StoreU64(n, i*i) // fresh object: no logging needed
			dev.StoreU64(n+8, 0)
			tail := puddles.Addr(dev.LoadU64(root + 8))
			if tail == 0 {
				if err := tx.SetU64(root, uint64(n)); err != nil {
					return err
				}
			} else if err := tx.SetU64(tail+8, uint64(n)); err != nil {
				return err
			}
			return tx.RedoSetU64(root+8, uint64(n))
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Traverse with nothing but loads — the pointers are plain
	// addresses any code can follow.
	fmt.Println("squares stored in persistent memory:")
	for p := puddles.Addr(dev.LoadU64(root)); p != 0; p = puddles.Addr(dev.LoadU64(p + 8)) {
		fmt.Printf("  %d\n", dev.LoadU64(p))
	}
	st := sys.Stats()
	fmt.Printf("daemon: %d pools, %d puddles, %d KiB reserved\n",
		st.Pools, st.Puddles, st.ReservedBytes/1024)
}
