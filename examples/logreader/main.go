// Logreader reproduces the paper's Figure 3 scenario: a database
// application owns a database pool and an event-log pool, updating
// both in ONE cross-pool transaction (impossible in PMDK, whose
// transactions are confined to a single pool). A separate log-reader
// process, running under different credentials, has read-only access
// to the event log and none to the database.
package main

import (
	"fmt"
	"log"

	"puddles"
)

// Event is one audit record.
type Event struct {
	Seq    uint64
	Amount uint64
	Next   puddles.Ptr
}

// EventLogRoot anchors the event chain.
type EventLogRoot struct {
	Head  puddles.Ptr
	Tail  puddles.Ptr
	Count uint64
}

// Account is a database record.
type Account struct {
	Balance uint64
}

func main() {
	sys, err := puddles.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	// --- the database application (uid 100) ---
	app := sys.Connect()
	defer app.Close()
	if err := app.Hello(100, 10); err != nil {
		log.Fatal(err)
	}
	eventT, _ := app.RegisterLayout("Event", Event{})
	evRootT, _ := app.RegisterLayout("EventLogRoot", EventLogRoot{})
	acctT, _ := app.RegisterLayout("Account", Account{})

	// Database readable only by the owner; the event log readable by
	// everyone (mode 0644).
	db, err := app.CreatePool("bank-db", 0o600)
	if err != nil {
		log.Fatal(err)
	}
	events, err := app.CreatePool("bank-events", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	acct, err := db.CreateRoot(acctT.ID, 8)
	if err != nil {
		log.Fatal(err)
	}
	evRoot, err := events.CreateRoot(evRootT.ID, 24)
	if err != nil {
		log.Fatal(err)
	}

	dev := sys.Device()
	// Deposits: each transaction updates the DATABASE pool and appends
	// to the EVENT-LOG pool atomically — both pools live in the same
	// global puddle space, so one log covers both.
	for i := uint64(1); i <= 5; i++ {
		amount := i * 100
		err := app.Run(db, func(tx *puddles.Tx) error {
			if err := tx.SetU64(acct, dev.LoadU64(acct)+amount); err != nil {
				return err
			}
			ev, err := tx.Alloc(eventT.ID, 24)
			if err != nil {
				return err
			}
			dev.StoreU64(ev, i)
			dev.StoreU64(ev+8, amount)
			dev.StoreU64(ev+16, 0)
			tail := puddles.Addr(dev.LoadU64(evRoot + 8))
			if tail == 0 {
				if err := tx.SetU64(evRoot, uint64(ev)); err != nil {
					return err
				}
			} else if err := tx.SetU64(tail+16, uint64(ev)); err != nil {
				return err
			}
			if err := tx.SetU64(evRoot+8, uint64(ev)); err != nil {
				return err
			}
			return tx.SetU64(evRoot+16, dev.LoadU64(evRoot+16)+1)
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("app: balance=%d after %d events\n", dev.LoadU64(acct), dev.LoadU64(evRoot+16))

	// --- the log reader (uid 200, a different user) ---
	reader := sys.Connect()
	defer reader.Close()
	if err := reader.Hello(200, 20); err != nil {
		log.Fatal(err)
	}
	if _, err := reader.OpenPool("bank-db"); err != nil {
		fmt.Println("reader: bank-db correctly denied:", err)
	} else {
		log.Fatal("reader should not see the database")
	}
	evPool, err := reader.OpenPool("bank-events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reader: bank-events opened read-only (writable=%v)\n", evPool.Writable)
	rRoot, err := evPool.Root()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reader: audit trail:")
	for p := puddles.Addr(dev.LoadU64(rRoot)); p != 0; p = puddles.Addr(dev.LoadU64(p + 16)) {
		fmt.Printf("  event %d: amount %d\n", dev.LoadU64(p), dev.LoadU64(p+8))
	}
}
