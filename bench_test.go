// Benchmarks regenerating the paper's tables and figures as testing.B
// micro-versions. cmd/benchrunner produces the full paper-style tables
// (fixed op counts, execution-time rows); these benches give per-op
// costs for the same code paths and feed `go test -bench`.
//
// Index (see DESIGN.md §5 and EXPERIMENTS.md):
//
//	BenchmarkFig1_*   — fat vs native pointer overhead (Figure 1)
//	BenchmarkTable3_* — API primitive latencies (Table 3)
//	BenchmarkDaemon_* — daemon primitives (§5.1)
//	BenchmarkReloc_*  — relocatability primitives (§5.1)
//	BenchmarkFig9_*   — linked list ops across libraries (Figure 9)
//	BenchmarkFig10_*  — order-8 B-tree ops across libraries (Figure 10)
//	BenchmarkFig11_*  — YCSB workloads across libraries (Figure 11)
//	BenchmarkFig12_*  — multithreaded transaction scaling (Figure 12)
//	BenchmarkFig14_*  — sensor aggregation, Puddles vs PMDK (Fig. 14)
package puddles_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"puddles/internal/baselines/atlas"
	"puddles/internal/baselines/gopmem"
	"puddles/internal/baselines/pmdk"
	"puddles/internal/baselines/puddleslib"
	"puddles/internal/baselines/romulus"
	"puddles/internal/core"
	"puddles/internal/daemon"
	"puddles/internal/kvstore"
	"puddles/internal/pmem"
	"puddles/internal/pmlib"
	"puddles/internal/proto"
	"puddles/internal/ptypes"
	"puddles/internal/puddle"
	"puddles/internal/sensornet"
	"puddles/internal/structures"
	"puddles/internal/ycsb"
)

// --- Figure 1 ---

func BenchmarkFig1_ListTraverse(b *testing.B) {
	const nodes = 1 << 16
	for _, mk := range []struct {
		name string
		mk   func() structures.PtrCodec
	}{
		{"native", func() structures.PtrCodec { return structures.NativeCodec{} }},
		{"fat", func() structures.PtrCodec { return structures.NewFatCodec(0x100000) }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			dev := pmem.New()
			l := structures.NewRawList(dev, mk.mk(), 0x100000, 1<<30)
			l.Build(nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if l.Traverse() == 0 {
					b.Fatal("empty")
				}
			}
			b.ReportMetric(float64(nodes), "nodes/op")
		})
	}
}

func BenchmarkFig1_TreeTraverseDF(b *testing.B) {
	const height = 14
	for _, mk := range []struct {
		name string
		mk   func() structures.PtrCodec
	}{
		{"native", func() structures.PtrCodec { return structures.NativeCodec{} }},
		{"fat", func() structures.PtrCodec { return structures.NewFatCodec(0x100000) }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			dev := pmem.New()
			t := structures.NewRawTree(dev, mk.mk(), 0x100000)
			t.Build(height)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if t.TraverseDF() == 0 {
					b.Fatal("empty")
				}
			}
		})
	}
}

// --- Table 3 ---

func table3Libs(b *testing.B) []pmlib.Lib {
	b.Helper()
	pl, err := puddleslib.New()
	if err != nil {
		b.Fatal(err)
	}
	pk, err := pmdk.NewLib(1 << 30)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pl.Close(); pk.Close() })
	return []pmlib.Lib{pl, pk}
}

func BenchmarkTable3_TxNop(b *testing.B) {
	for _, lib := range table3Libs(b) {
		b.Run(lib.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := lib.Run(func(tx pmlib.Tx) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable3_TxAdd(b *testing.B) {
	for _, size := range []int{8, 4096} {
		for _, lib := range table3Libs(b) {
			b.Run(fmt.Sprintf("%s/%dB", lib.Name(), size), func(b *testing.B) {
				root, err := lib.Root(8192)
				if err != nil {
					b.Fatal(err)
				}
				addr := lib.Deref(root)
				buf := make([]byte, size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := lib.Run(func(tx pmlib.Tx) error { return tx.Set(addr, buf) }); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTable3_MallocFree(b *testing.B) {
	for _, size := range []uint32{8, 4096} {
		for _, lib := range table3Libs(b) {
			b.Run(fmt.Sprintf("%s/%dB", lib.Name(), size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := lib.Run(func(tx pmlib.Tx) error {
						r, err := tx.Alloc(size)
						if err != nil {
							return err
						}
						return tx.Free(r)
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- §5.1 daemon primitives ---

func BenchmarkDaemon_NopRoundTrip(b *testing.B) {
	d, err := daemon.New(pmem.New())
	if err != nil {
		b.Fatal(err)
	}
	c := core.ConnectLocal(d)
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Nop(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDaemon_GetNewPuddle(b *testing.B) {
	d, err := daemon.New(pmem.New())
	if err != nil {
		b.Fatal(err)
	}
	c := core.ConnectLocal(d)
	defer c.Close()
	pool, err := c.CreatePool("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RoundTrip(&proto.Request{Op: proto.OpGetNewPuddle, Pool: pool.UUID, Size: puddle.MinSize}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDaemon_GetExistPuddle(b *testing.B) {
	d, err := daemon.New(pmem.New())
	if err != nil {
		b.Fatal(err)
	}
	c := core.ConnectLocal(d)
	defer c.Close()
	pool, err := c.CreatePool("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := c.RoundTrip(&proto.Request{Op: proto.OpGetNewPuddle, Pool: pool.UUID, Size: puddle.MinSize})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RoundTrip(&proto.Request{Op: proto.OpGetExistPuddle, UUID: resp.UUID}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5.1 relocatability primitives ---

func relocPool(b *testing.B, c *core.Client, name string, nodes int) []byte {
	b.Helper()
	nodeT, err := c.RegisterType("bench.node", 16, []ptypes.PtrField{{Offset: 8}})
	if err != nil && err != ptypes.ErrDuplicate {
		// registering twice across sub-benches is fine
		_ = err
	}
	rootT, _ := c.RegisterType("bench.root", 16, []ptypes.PtrField{{Offset: 0}})
	pool, err := c.CreatePool(name, 0)
	if err != nil {
		b.Fatal(err)
	}
	root, err := pool.CreateRoot(rootT.ID, 16)
	if err != nil {
		b.Fatal(err)
	}
	dev := c.Device()
	prev := root
	for i := 0; i < nodes; i++ {
		a, err := pool.Malloc(nodeT.ID, 16)
		if err != nil {
			b.Fatal(err)
		}
		dev.StoreU64(a, uint64(i))
		dev.StoreU64(prev, uint64(a))
		prev = a + 8
	}
	blob, err := pool.Export()
	if err != nil {
		b.Fatal(err)
	}
	return blob
}

func BenchmarkReloc_ExportImportRewrite(b *testing.B) {
	for _, nodes := range []int{20, 2000, 20000} {
		b.Run(fmt.Sprintf("%dptrs", nodes), func(b *testing.B) {
			d, err := daemon.New(pmem.New())
			if err != nil {
				b.Fatal(err)
			}
			c := core.ConnectLocal(d)
			defer c.Close()
			blob := relocPool(b, c, "src", nodes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clone, err := c.ImportPool(fmt.Sprintf("clone-%d", i), blob, false)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := clone.Delete(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(nodes+1), "ptrs/op")
		})
	}
}

// --- Figure 9 ---

func fig9Libs(b *testing.B) []pmlib.Lib {
	b.Helper()
	pl, err := puddleslib.New()
	if err != nil {
		b.Fatal(err)
	}
	pk, err := pmdk.NewLib(2 << 30)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := romulus.NewLib(1 << 30)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pl.Close(); pk.Close(); rm.Close() })
	return []pmlib.Lib{pl, pk, rm}
}

func BenchmarkFig9_ListInsert(b *testing.B) {
	for _, lib := range fig9Libs(b) {
		b.Run(lib.Name(), func(b *testing.B) {
			l, err := structures.NewList(lib)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig9_ListTraverse(b *testing.B) {
	// Libs are built inside the sub-benchmark: the harness re-invokes
	// the closure with growing b.N, and a shared list would accumulate
	// nodes across invocations.
	const nodes = 50000
	for _, name := range []string{"puddles", "pmdk", "romulus"} {
		b.Run(name, func(b *testing.B) {
			lib := mkFig9Lib(b, name)
			l, err := structures.NewList(lib)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < nodes; i++ {
				if err := l.Append(uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if l.Sum() != uint64(nodes)*uint64(nodes-1)/2 {
					b.Fatal("bad sum")
				}
			}
			b.ReportMetric(nodes, "nodes/op")
		})
	}
}

// mkFig9Lib constructs one comparison library by name.
func mkFig9Lib(b *testing.B, name string) pmlib.Lib {
	b.Helper()
	var lib pmlib.Lib
	var err error
	switch name {
	case "puddles":
		lib, err = puddleslib.New()
	case "pmdk":
		lib, err = pmdk.NewLib(2 << 30)
	case "romulus":
		lib, err = romulus.NewLib(1 << 30)
	default:
		b.Fatalf("unknown lib %q", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { lib.Close() })
	return lib
}

func BenchmarkFig9_ListDelete(b *testing.B) {
	for _, lib := range fig9Libs(b) {
		b.Run(lib.Name(), func(b *testing.B) {
			l, err := structures.NewList(lib)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if err := l.Append(uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.PopHead(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 10 ---

func BenchmarkFig10_BTree(b *testing.B) {
	for _, phase := range []string{"insert", "search", "delete"} {
		for _, lib := range fig9Libs(b) {
			b.Run(phase+"/"+lib.Name(), func(b *testing.B) {
				bt, err := structures.NewBTree(lib)
				if err != nil {
					b.Fatal(err)
				}
				if phase != "insert" {
					for i := 0; i < b.N; i++ {
						if err := bt.Insert(mix(uint64(i)), uint64(i)); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ResetTimer()
				switch phase {
				case "insert":
					for i := 0; i < b.N; i++ {
						if err := bt.Insert(mix(uint64(i)), uint64(i)); err != nil {
							b.Fatal(err)
						}
					}
				case "search":
					for i := 0; i < b.N; i++ {
						if _, ok := bt.Search(mix(uint64(i))); !ok {
							b.Fatal("missing key")
						}
					}
				case "delete":
					for i := 0; i < b.N; i++ {
						if _, err := bt.Delete(mix(uint64(i))); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

func mix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	return v
}

// --- Figure 11 ---

func BenchmarkFig11_YCSB(b *testing.B) {
	const records = 20000
	mkLibs := func(b *testing.B) []pmlib.Lib {
		pl, err := puddleslib.New()
		if err != nil {
			b.Fatal(err)
		}
		pk, err := pmdk.NewLib(2 << 30)
		if err != nil {
			b.Fatal(err)
		}
		rm, err := romulus.NewLib(1 << 30)
		if err != nil {
			b.Fatal(err)
		}
		gp, err := gopmem.NewLib(2 << 30)
		if err != nil {
			b.Fatal(err)
		}
		at, err := atlas.NewLib(2 << 30)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			for _, l := range []pmlib.Lib{pl, pk, rm, gp, at} {
				l.Close()
			}
		})
		return []pmlib.Lib{pl, pk, rm, gp, at}
	}
	for _, wname := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		w, err := ycsb.WorkloadByName(wname)
		if err != nil {
			b.Fatal(err)
		}
		for _, lib := range mkLibs(b) {
			b.Run(wname+"/"+lib.Name(), func(b *testing.B) {
				s, err := kvstore.New(lib, kvstore.Options{Buckets: 1 << 15, ValueSize: 100})
				if err != nil {
					b.Fatal(err)
				}
				value := make([]byte, 100)
				for _, k := range ycsb.LoadKeys(records) {
					if err := s.Put(k, value); err != nil {
						b.Fatal(err)
					}
				}
				g := ycsb.NewGenerator(w, records, 42)
				buf := make([]byte, 100)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op := g.Next()
					switch op.Kind {
					case ycsb.OpRead:
						if err := s.Get(op.Key, buf); err != nil {
							b.Fatal(err)
						}
					case ycsb.OpUpdate, ycsb.OpInsert:
						if err := s.Put(op.Key, value); err != nil {
							b.Fatal(err)
						}
					case ycsb.OpScan:
						s.Scan(op.Key, op.ScanLen, func(uint64, []byte) {})
					case ycsb.OpRMW:
						if err := s.Get(op.Key, buf); err != nil {
							b.Fatal(err)
						}
						buf[0]++
						if err := s.Put(op.Key, buf); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// --- Figure 12 ---

func BenchmarkFig12_Scaling(b *testing.B) {
	for _, nt := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads-%d", nt), func(b *testing.B) {
			d, err := daemon.New(pmem.New())
			if err != nil {
				b.Fatal(err)
			}
			clients := make([]*core.Client, nt)
			pools := make([]*core.Pool, nt)
			arrays := make([]pmem.Addr, nt)
			const per = 4096
			for i := range clients {
				clients[i] = core.ConnectLocal(d)
				ti, err := clients[i].RegisterType("bench.arr", 8, nil)
				if err != nil {
					b.Fatal(err)
				}
				pool, err := clients[i].CreatePool(fmt.Sprintf("p%d", i), 0)
				if err != nil {
					b.Fatal(err)
				}
				arr, err := pool.CreateRoot(ti.ID, per*8)
				if err != nil {
					b.Fatal(err)
				}
				pools[i], arrays[i] = pool, arr
			}
			defer func() {
				for _, c := range clients {
					c.Close()
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < nt; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						c, pool, arr := clients[w], pools[w], arrays[w]
						dev := c.Device()
						if err := c.Run(pool, func(tx *core.Tx) error {
							for e := 0; e < 256; e++ {
								at := arr + pmem.Addr(e*8)
								if err := tx.SetU64(at, dev.LoadU64(at)*2718281828+314159); err != nil {
									return err
								}
							}
							return nil
						}); err != nil {
							panic(err)
						}
					}(w)
				}
				wg.Wait()
			}
			b.ReportMetric(float64(nt*256), "cells/op")
		})
	}
}

// --- concurrent transaction scaling (multi-worker YCSB) ---

// BenchmarkYCSB_Concurrent sweeps worker counts over one latched
// kvstore on a single Puddles client: N goroutines, one cached log
// puddle each (paper §4.1), per-bucket latching in the store, and the
// sharded lock hierarchy underneath. The device models a PM fence
// stall (DIMM write-queue drain), so scaling measures how much of the
// persistence latency concurrent transactions overlap — with the old
// whole-client/whole-pool locks they could overlap none of it.
func BenchmarkYCSB_Concurrent(b *testing.B) {
	const (
		records      = 8192
		fenceLatency = 6 * time.Microsecond
	)
	for _, wname := range []string{"A", "G"} {
		w, err := ycsb.WorkloadByName(wname)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/%dworkers", wname, workers), func(b *testing.B) {
				lib, err := puddleslib.New()
				if err != nil {
					b.Fatal(err)
				}
				defer lib.Close()
				s, err := kvstore.New(lib, kvstore.Options{Buckets: 1 << 13, ValueSize: 100, LatchStripes: 512})
				if err != nil {
					b.Fatal(err)
				}
				value := make([]byte, 100)
				for _, k := range ycsb.LoadKeys(records) {
					if err := s.Put(k, value); err != nil {
						b.Fatal(err)
					}
				}
				lib.Device().SetFenceLatency(fenceLatency)
				opsPer := b.N / workers
				if opsPer == 0 {
					opsPer = 1
				}
				b.ResetTimer()
				res, err := ycsb.RunConcurrent(s, w, records, ycsb.ConcurrentOptions{
					Workers: workers, OpsPerWorker: opsPer, ValueSize: 100, Seed: 42,
				})
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.OpsPerSec(), "ops/s")
			})
		}
	}
}

// --- read-heavy scaling (seqlock vs latched reads) ---

// BenchmarkYCSBRead_Concurrent sweeps worker counts over the
// read-heavy mixes (B: 95/5, C: read-only) with the optimistic
// seqlock read path against the latched baseline. Writers still fence
// (the device models the PM stall), but reads in optimistic mode take
// no lock at all — the latched/optimistic gap at high worker counts
// is the read path's contribution, and the reported fallbacks/op
// metric checks that optimistic reads almost never degrade to the
// stripe latch.
func BenchmarkYCSBRead_Concurrent(b *testing.B) {
	const (
		records      = 8192
		fenceLatency = 6 * time.Microsecond
	)
	for _, wname := range []string{"B", "C"} {
		w, err := ycsb.WorkloadByName(wname)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name    string
			latched bool
		}{{"latched", true}, {"optimistic", false}} {
			for _, workers := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/%dworkers", wname, mode.name, workers), func(b *testing.B) {
					lib, err := puddleslib.New()
					if err != nil {
						b.Fatal(err)
					}
					defer lib.Close()
					s, err := kvstore.New(lib, kvstore.Options{
						Buckets: 1 << 13, ValueSize: 100,
						LatchStripes: 512, LatchedReads: mode.latched,
					})
					if err != nil {
						b.Fatal(err)
					}
					value := make([]byte, 100)
					for _, k := range ycsb.LoadKeys(records) {
						if err := s.Put(k, value); err != nil {
							b.Fatal(err)
						}
					}
					lib.Device().SetFenceLatency(fenceLatency)
					opsPer := b.N / workers
					if opsPer == 0 {
						opsPer = 1
					}
					b.ResetTimer()
					res, err := ycsb.RunConcurrent(s, w, records, ycsb.ConcurrentOptions{
						Workers: workers, OpsPerWorker: opsPer, ValueSize: 100, Seed: 42,
					})
					b.StopTimer()
					if err != nil {
						b.Fatal(err)
					}
					rs := s.ReadStats()
					b.ReportMetric(res.OpsPerSec(), "ops/s")
					b.ReportMetric(float64(rs.Fallbacks)/float64(res.Ops), "fallbacks/op")
				})
			}
		}
	}
}

// --- commit-path flush coalescing ---

// BenchmarkCommit_FlushCoalescing measures the write-combining commit
// engine: a transaction that undo-logs several ranges commits with one
// flush per distinct cacheline run, not one per range. The flushes/op
// and coalesced/op metrics come straight from pmem.Device.Stats, so
// regressions in the coalescer show up as counter shifts even when
// wall-clock noise hides them.
func BenchmarkCommit_FlushCoalescing(b *testing.B) {
	patterns := []struct {
		name string
		offs []pmem.Addr
	}{
		{"same-line", []pmem.Addr{0, 16, 32, 48}},
		{"adjacent-lines", []pmem.Addr{0, 64, 128, 192}},
		{"scattered-lines", []pmem.Addr{0, 1024, 2048, 3072}},
	}
	for _, p := range patterns {
		b.Run(p.name, func(b *testing.B) {
			d, err := daemon.New(pmem.New())
			if err != nil {
				b.Fatal(err)
			}
			c := core.ConnectLocal(d)
			defer c.Close()
			ti, err := c.RegisterType("fc.blob", 4096, nil)
			if err != nil {
				b.Fatal(err)
			}
			pool, err := c.CreatePool("fc", 0)
			if err != nil {
				b.Fatal(err)
			}
			root, err := pool.CreateRoot(ti.ID, 4096)
			if err != nil {
				b.Fatal(err)
			}
			dev := c.Device()
			before := dev.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Run(pool, func(tx *core.Tx) error {
					for _, off := range p.offs {
						if err := tx.SetU64(root+off, uint64(i)); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := dev.Stats()
			b.ReportMetric(float64(after.Flushes-before.Flushes)/float64(b.N), "flushes/op")
			b.ReportMetric(float64(after.CoalescedFlushes-before.CoalescedFlushes)/float64(b.N), "coalesced/op")
			b.ReportMetric(float64(after.Fences-before.Fences)/float64(b.N), "fences/op")
		})
	}
}

// --- Figure 14 ---

func BenchmarkFig14_Aggregation(b *testing.B) {
	const nodes, vars = 4, 100
	b.Run("puddles", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			home, err := sensornet.NewNode("home")
			if err != nil {
				b.Fatal(err)
			}
			pool, err := home.BuildState(vars)
			if err != nil {
				b.Fatal(err)
			}
			blob, _ := sensornet.Distribute(pool)
			uploads := make([][]byte, nodes)
			for n := 0; n < nodes; n++ {
				sn, _ := sensornet.NewNode("s")
				uploads[n], err = sn.SensorWork(blob, int64(n))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if _, _, err := home.AggregatePuddles(uploads); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pmdk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			nw, err := sensornet.NewPMDKNetwork(vars)
			if err != nil {
				b.Fatal(err)
			}
			uploads := make([][]byte, nodes)
			for n := 0; n < nodes; n++ {
				uploads[n], err = nw.SensorWorkPMDK(n, int64(n))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if _, _, err := nw.AggregatePMDK(uploads); err != nil {
				b.Fatal(err)
			}
		}
	})
}
